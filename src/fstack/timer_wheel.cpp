#include "fstack/timer_wheel.hpp"

#include <algorithm>

namespace cherinet::fstack {

namespace {
constexpr std::uint64_t kTickNs = 1ull << TimerWheel::kTickShift;

[[nodiscard]] std::uint64_t to_tick(sim::Ns deadline) noexcept {
  const auto ns = deadline.count() < 0 ? 0 : deadline.count();
  // Ceiling: a timer armed mid-tick owns the NEXT boundary, never fires
  // early (the pump_until contract in the header).
  return (static_cast<std::uint64_t>(ns) + kTickNs - 1) >>
         TimerWheel::kTickShift;
}
}  // namespace

void TimerWheel::link(std::int32_t idx, std::int16_t list) {
  std::int32_t* head = head_of(list);
  Entry& e = slab_[static_cast<std::size_t>(idx)];
  e.list = list;
  e.prev = -1;
  e.next = *head;
  if (*head >= 0) slab_[static_cast<std::size_t>(*head)].prev = idx;
  *head = idx;
  // Min-cache: a clean level folds the newcomer in for free (O(1)).
  const std::int32_t c = cache_of(list);
  if (c >= 0 && !level_dirty_[static_cast<std::size_t>(c)] &&
      e.dl_tick < level_min_[static_cast<std::size_t>(c)]) {
    level_min_[static_cast<std::size_t>(c)] = e.dl_tick;
  }
}

void TimerWheel::unlink(std::int32_t idx) {
  Entry& e = slab_[static_cast<std::size_t>(idx)];
  if (e.prev >= 0) {
    slab_[static_cast<std::size_t>(e.prev)].next = e.next;
  } else {
    *head_of(e.list) = e.next;
  }
  if (e.next >= 0) slab_[static_cast<std::size_t>(e.next)].prev = e.prev;
  e.prev = e.next = -1;
  // Min-cache: only removing the (possibly duplicated) minimum can change
  // it — mark the level for lazy recompute; anything larger leaves the
  // cached value exact.
  const std::int32_t c = cache_of(e.list);
  if (c >= 0 && e.dl_tick <= level_min_[static_cast<std::size_t>(c)]) {
    level_dirty_[static_cast<std::size_t>(c)] = true;
  }
}

void TimerWheel::place(std::int32_t idx) {
  const Entry& e = slab_[static_cast<std::size_t>(idx)];
  if (e.dl_tick <= cur_tick_) {
    link(idx, kListReady);
    return;
  }
  const std::uint64_t delta = e.dl_tick - cur_tick_;
  for (std::uint32_t level = 0; level < kLevels; ++level) {
    if (delta < (1ull << (kSlotBits * (level + 1)))) {
      const auto slot = static_cast<std::uint32_t>(
          (e.dl_tick >> (kSlotBits * level)) & (kSlots - 1));
      link(idx, static_cast<std::int16_t>(level * kSlots + slot));
      return;
    }
  }
  link(idx, kListOverflow);
}

TimerWheel::Id TimerWheel::arm(sim::Ns deadline, std::uint64_t cookie) {
  std::int32_t idx;
  if (free_head_ >= 0) {
    idx = free_head_;
    free_head_ = slab_[static_cast<std::size_t>(idx)].next;
  } else {
    idx = static_cast<std::int32_t>(slab_.size());
    slab_.emplace_back();
  }
  Entry& e = slab_[static_cast<std::size_t>(idx)];
  e.cookie = cookie;
  e.dl_tick = to_tick(deadline);
  e.prev = e.next = -1;
  place(idx);
  ++size_;
  ++stats_.armed;
  return (static_cast<std::uint64_t>(e.gen) << 32) |
         (static_cast<std::uint64_t>(idx) + 1);
}

bool TimerWheel::cancel(Id id) {
  if (id == kInvalidId) return false;
  const auto idx = static_cast<std::int32_t>((id & 0xFFFFFFFFull) - 1);
  if (idx < 0 || static_cast<std::size_t>(idx) >= slab_.size()) return false;
  Entry& e = slab_[static_cast<std::size_t>(idx)];
  if (e.list == kListFree || e.gen != static_cast<std::uint32_t>(id >> 32)) {
    return false;
  }
  unlink(idx);
  e.list = kListFree;
  ++e.gen;  // invalidate outstanding handles to this slot
  e.next = free_head_;
  free_head_ = idx;
  --size_;
  ++stats_.cancelled;
  return true;
}

void TimerWheel::collect_due(sim::Ns now, std::vector<std::uint64_t>& due) {
  // Ready list: armed at-or-before current wheel time, fire unconditionally.
  while (ready_head_ >= 0) {
    const std::int32_t idx = ready_head_;
    Entry& e = slab_[static_cast<std::size_t>(idx)];
    unlink(idx);
    due.push_back(e.cookie);
    e.list = kListFree;
    ++e.gen;
    e.next = free_head_;
    free_head_ = idx;
    --size_;
    ++stats_.fired;
  }

  const std::uint64_t new_tick =
      static_cast<std::uint64_t>(now.count() < 0 ? 0 : now.count()) >>
      kTickShift;
  if (new_tick <= cur_tick_) return;
  const std::uint64_t old_tick = cur_tick_;
  cur_tick_ = new_tick;  // cascades re-file relative to the NEW time

  for (std::uint32_t level = 0; level < kLevels; ++level) {
    const std::uint64_t lt_old = old_tick >> (kSlotBits * level);
    const std::uint64_t lt_new = new_tick >> (kSlotBits * level);
    if (lt_old == lt_new) break;  // higher levels unchanged too
    const std::uint64_t steps = std::min<std::uint64_t>(lt_new - lt_old,
                                                        kSlots);
    for (std::uint64_t i = 1; i <= steps; ++i) {
      const auto slot = static_cast<std::uint32_t>((lt_old + i) & (kSlots - 1));
      std::int32_t* head = &slots_[level * kSlots + slot];
      while (*head >= 0) {
        const std::int32_t idx = *head;
        Entry& e = slab_[static_cast<std::size_t>(idx)];
        unlink(idx);
        if (e.dl_tick <= new_tick) {
          due.push_back(e.cookie);
          e.list = kListFree;
          ++e.gen;
          e.next = free_head_;
          free_head_ = idx;
          --size_;
          ++stats_.fired;
        } else {
          // Not yet due: cascade into the (strictly lower) level that now
          // covers its shrunken delta.
          place(idx);
          ++stats_.cascaded;
        }
      }
    }
  }

  // Overflow entries park beyond level 3's span; rescan whenever the
  // top-level cursor advanced (every ~2.2 min of virtual time) so a
  // shrinking delta re-files into the wheels long before it is due.
  if ((old_tick >> (kSlotBits * (kLevels - 1))) !=
      (new_tick >> (kSlotBits * (kLevels - 1)))) {
    std::int32_t idx = overflow_head_;
    while (idx >= 0) {
      Entry& e = slab_[static_cast<std::size_t>(idx)];
      const std::int32_t next = e.next;
      unlink(idx);
      if (e.dl_tick <= new_tick) {
        due.push_back(e.cookie);
        e.list = kListFree;
        ++e.gen;
        e.next = free_head_;
        free_head_ = idx;
        --size_;
        ++stats_.fired;
      } else {
        place(idx);
        ++stats_.cascaded;
      }
      idx = next;
    }
  }
}

void TimerWheel::recompute_level_min(std::uint32_t cache) const {
  std::uint64_t min = kNoMin;
  if (cache == kLevels) {  // overflow list: no slot structure, walk it all
    for (std::int32_t idx = overflow_head_; idx >= 0;
         idx = slab_[static_cast<std::size_t>(idx)].next) {
      min = std::min(min, slab_[static_cast<std::size_t>(idx)].dl_tick);
    }
  } else {
    const std::uint32_t level = cache;
    const std::uint64_t lt = cur_tick_ >> (kSlotBits * level);
    // First non-empty slot in ring order ahead of the cursor holds the
    // level's minimum dl_tick group: every linked entry is strictly ahead
    // of the cursor (collect_due fired or cascaded the rest), and one wrap
    // == the level's whole span, so ring order IS deadline order.
    for (std::uint64_t i = 1; i <= kSlots; ++i) {
      const auto slot = static_cast<std::uint32_t>((lt + i) & (kSlots - 1));
      std::int32_t idx = slots_[level * kSlots + slot];
      if (idx < 0) continue;
      for (; idx >= 0; idx = slab_[static_cast<std::size_t>(idx)].next) {
        min = std::min(min, slab_[static_cast<std::size_t>(idx)].dl_tick);
      }
      break;
    }
  }
  level_min_[cache] = min;
  level_dirty_[cache] = false;
}

std::optional<sim::Ns> TimerWheel::next_deadline() const {
  if (size_ == 0) return std::nullopt;
  std::optional<std::uint64_t> min_tick;
  const auto consider = [&min_tick](std::uint64_t t) {
    if (!min_tick || t < *min_tick) min_tick = t;
  };
  if (ready_head_ >= 0) consider(cur_tick_);  // fires at the next expire()
  for (std::uint32_t c = 0; c <= kLevels; ++c) {
    if (level_dirty_[c]) recompute_level_min(c);
    if (level_min_[c] != kNoMin) consider(level_min_[c]);
  }
  if (!min_tick) return std::nullopt;
  return sim::Ns{static_cast<std::int64_t>(*min_tick << kTickShift)};
}

}  // namespace cherinet::fstack
