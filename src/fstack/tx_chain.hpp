// TxChain: the TCP send queue / retransmission store, zero-copy capable.
//
// v2 send semantics copied every application byte into the send SockBuf and
// held the BYTES until cumulatively acknowledged — the one remaining copy
// after the PR-2/PR-3 receive path went loan-based. TxChain interleaves two
// kinds of segments in strict sequence order instead:
//
//   * copy-backed: plain ff_write/ff_writev payload still lands in the
//     capability-bounded byte ring (SockBuf) exactly as before;
//   * mbuf-backed: ff_zc_send (and uring OP_ZC_SEND) on a TCP socket
//     appends a *retained mbuf reference* — an (mbuf, offset, length)
//     slice whose data room the application filled in place through the
//     bounded capability ff_zc_alloc handed out. No byte store at all.
//
// Emission is scatter-gather (PR 5): tcp_emit decomposes a segment's
// [off, off+len) range into TxPieces via gather() — mbuf slices and ring
// spans the stack turns into indirect mbufs chained behind the header mbuf,
// so the driver fetches payload straight from the still-live stores and no
// byte is copied at emission time, first transmission and retransmission
// alike. Every slice also caches its PARTIAL CHECKSUM, computed exactly
// once when the bytes enter the stack (during the admit copy for ff_write,
// from one capability walk at ff_zc_send): a segment covering whole slices
// checksums in O(#slices) via checksum_combine with zero payload re-reads.
// Cumulative ACK releases references from the head — a partial ACK trims
// the head slice (off advances, len shrinks, its cached sum invalidates).
// Teardown (FIN completion, RST, RTO give-up, destruction) releases every
// retained reference back to the pool.
//
// Budget: copied and zc bytes share the one configured sndbuf capacity at
// BYTE granularity (a zc slice charges its payload length, not its data
// room — TX rooms are dedicated allocations, not shared RX rooms, so pool
// pressure is already bounded by ff_zc_alloc's -ENOBUFS).
#pragma once

#include <cstdint>
#include <deque>
#include <span>

#include "fstack/api_types.hpp"
#include "fstack/sockbuf.hpp"
#include "updk/mempool.hpp"

namespace cherinet::fstack {

/// Send-path census accounting shared by every chain of one stack instance
/// (the TX mirror of RxStats): the zero-copy gate requires the zc path to
/// show ZERO copied bytes AND zero emission-time payload reads for the
/// queued volume.
struct TxStats {
  std::uint64_t copied_bytes = 0;  // app payload copied into stack TX stores
  std::uint64_t zc_bytes = 0;      // payload queued as retained mbuf refs
  std::uint64_t zc_segs = 0;       // mbuf-backed segments queued
  /// Payload bytes the EMISSION path had to read back (linearize fallback
  /// or a checksum over a range no cached partial covers). The gather path
  /// keeps this at 0; the fig4/fig5 zc census gates on exactly that.
  std::uint64_t emit_payload_reads = 0;
  /// Frame bytes (headers included) copied to linearize a chain for ARP
  /// parking — a cold-path copy counted apart from emission re-reads.
  std::uint64_t park_linearized_bytes = 0;
  /// Payload bytes the STACK one's-complement-summed on the TX path —
  /// admission-time cached partials, ff_zc_send capability walks, emission
  /// cache-miss walks, software-fallback composes. A queue that negotiated
  /// L4 checksum insertion keeps this at 0 (the device sums instead); the
  /// fig4/fig5 offload census gates on exactly that.
  std::uint64_t stack_checksum_bytes = 0;
};

/// One source extent of a segment's payload, produced by TxChain::gather:
/// either a window into a retained mbuf's data room (m != nullptr) or a
/// bounded view of the copy ring. `csum_ok` marks extents whose cached
/// partial sum covers exactly this range (whole-slice coverage).
struct TxPiece {
  updk::Mbuf* m = nullptr;
  machine::CapView view;    // ring-backed extents (m == nullptr)
  std::uint32_t off = 0;    // data-room offset (mbuf-backed only)
  std::uint32_t len = 0;
  std::uint32_t csum = 0;   // cached partial, even-aligned at extent start
  bool csum_ok = false;
};

class TxChain {
 public:
  TxChain() = default;
  /// `cache_csums` = false when the queue negotiated L4 checksum insertion:
  /// admission skips the per-slice partial sums entirely (the device prices
  /// the wire checksum), so no TX byte is ever software-summed.
  TxChain(SockBuf ring, updk::Mempool* pool, TxStats* stats,
          bool cache_csums = true)
      : ring_(std::move(ring)),
        pool_(pool),
        stats_(stats),
        cache_csums_(cache_csums) {}
  TxChain(const TxChain&) = delete;
  TxChain& operator=(const TxChain&) = delete;
  TxChain(TxChain&& other) noexcept;
  TxChain& operator=(TxChain&& other) noexcept;
  ~TxChain() { release_all(); }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.capacity();
  }
  /// Unacknowledged bytes queued (copied + zc, in sequence order).
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t free() const noexcept {
    return capacity() - used_;
  }
  [[nodiscard]] bool empty() const noexcept { return used_ == 0; }
  /// Whether admission caches per-slice partial checksums (software path).
  [[nodiscard]] bool caches_csums() const noexcept { return cache_csums_; }

  /// Gather-append a pre-validated iovec batch through the copy path.
  /// Returns total bytes appended (short count when the budget fills).
  /// Each element becomes its own slice with its checksum cached during
  /// the admit copy — emission composes sums instead of re-reading.
  std::size_t writev_from(std::span<const FfIovec> iov);

  /// Append one zero-copy slice: the chain takes over the caller's mbuf
  /// reference (ff_zc_alloc's reservation transfers here on success) and
  /// holds it until cumulatively ACKed. `csum` is the slice's partial
  /// checksum, computed once by the caller when the bytes entered.
  /// All-or-nothing against the free budget; returns false (reference NOT
  /// taken) when len does not fit.
  bool push_zc(updk::Mbuf* m, std::uint32_t off, std::uint32_t len,
               std::uint32_t csum);

  /// Copy out `out.size()` bytes at logical offset `off` from the head
  /// (snd_una) — the linearizing fallback (and test hook); the emission
  /// hot path uses gather() instead.
  void peek(std::size_t off, std::span<std::byte> out) const;

  /// Decompose [off, off+len) into source extents for scatter-gather
  /// emission. Returns the piece count, or 0 when the range needs more
  /// than out.size() pieces (the caller falls back to peek()).
  std::size_t gather(std::size_t off, std::size_t len,
                     std::span<TxPiece> out) const;

  /// Drop `n` bytes from the head (cumulative ACK). Fully-acked mbuf
  /// segments release their reference to the pool; a partial ACK trims the
  /// head slice in place.
  void consume(std::size_t n);

  /// Release every retained mbuf reference and drop all queued bytes
  /// (connection teardown: FIN completion reaps via the destructor, RST /
  /// RTO give-up call this eagerly so a lingering PCB pins nothing).
  void release_all();

 private:
  struct Seg {
    updk::Mbuf* m = nullptr;  // nullptr => bytes live in the copy ring
    std::uint32_t off = 0;    // mbuf-backed: data-room offset of byte 0
    std::uint32_t len = 0;    // unacked bytes remaining in this segment
    std::uint32_t csum = 0;   // partial sum of [off, off+len), even-aligned
    bool csum_ok = false;     // false once a head trim stales the sum
  };

  SockBuf ring_;  // copy-backed bytes (in chain order, FIFO)
  updk::Mempool* pool_ = nullptr;
  TxStats* stats_ = nullptr;
  bool cache_csums_ = true;
  std::deque<Seg> segs_;
  std::size_t used_ = 0;
};

}  // namespace cherinet::fstack
