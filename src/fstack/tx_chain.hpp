// TxChain: the TCP send queue / retransmission store, zero-copy capable.
//
// v2 send semantics copied every application byte into the send SockBuf and
// held the BYTES until cumulatively acknowledged — the one remaining copy
// after the PR-2/PR-3 receive path went loan-based. TxChain interleaves two
// kinds of segments in strict sequence order instead:
//
//   * copy-backed: plain ff_write/ff_writev payload still lands in the
//     capability-bounded byte ring (SockBuf) exactly as before;
//   * mbuf-backed: ff_zc_send (and uring OP_ZC_SEND) on a TCP socket
//     appends a *retained mbuf reference* — an (mbuf, offset, length)
//     slice whose data room the application filled in place through the
//     bounded capability ff_zc_alloc handed out. No byte store at all.
//
// tcp_output builds segments by gathering at a logical offset from snd_una,
// reading straight out of the referenced data rooms; retransmission simply
// re-reads the still-live mbuf. Cumulative ACK releases references from the
// head — a partial ACK trims the head slice (off advances, len shrinks) so
// the unacked tail stays addressable. Teardown (FIN completion, RST, RTO
// give-up, destruction) releases every retained reference back to the pool.
//
// Budget: copied and zc bytes share the one configured sndbuf capacity at
// BYTE granularity (a zc slice charges its payload length, not its data
// room — TX rooms are dedicated allocations, not shared RX rooms, so pool
// pressure is already bounded by ff_zc_alloc's -ENOBUFS).
#pragma once

#include <cstdint>
#include <deque>
#include <span>

#include "fstack/api_types.hpp"
#include "fstack/sockbuf.hpp"
#include "updk/mempool.hpp"

namespace cherinet::fstack {

/// Send-path census accounting shared by every chain of one stack instance
/// (the TX mirror of RxStats): the zero-copy gate requires the zc path to
/// show ZERO copied bytes for the queued volume.
struct TxStats {
  std::uint64_t copied_bytes = 0;  // app payload copied into stack TX stores
  std::uint64_t zc_bytes = 0;      // payload queued as retained mbuf refs
  std::uint64_t zc_segs = 0;       // mbuf-backed segments queued
};

class TxChain {
 public:
  TxChain() = default;
  TxChain(SockBuf ring, updk::Mempool* pool, TxStats* stats)
      : ring_(std::move(ring)), pool_(pool), stats_(stats) {}
  TxChain(const TxChain&) = delete;
  TxChain& operator=(const TxChain&) = delete;
  TxChain(TxChain&& other) noexcept;
  TxChain& operator=(TxChain&& other) noexcept;
  ~TxChain() { release_all(); }

  [[nodiscard]] std::size_t capacity() const noexcept {
    return ring_.capacity();
  }
  /// Unacknowledged bytes queued (copied + zc, in sequence order).
  [[nodiscard]] std::size_t used() const noexcept { return used_; }
  [[nodiscard]] std::size_t free() const noexcept {
    return capacity() - used_;
  }
  [[nodiscard]] bool empty() const noexcept { return used_ == 0; }

  /// Gather-append a pre-validated iovec batch through the copy path.
  /// Returns total bytes appended (short count when the budget fills).
  std::size_t writev_from(std::span<const FfIovec> iov);

  /// Append one zero-copy slice: the chain takes over the caller's mbuf
  /// reference (ff_zc_alloc's reservation transfers here on success) and
  /// holds it until cumulatively ACKed. All-or-nothing against the free
  /// budget; returns false (reference NOT taken) when len does not fit.
  bool push_zc(updk::Mbuf* m, std::uint32_t off, std::uint32_t len);

  /// Copy out `out.size()` bytes at logical offset `off` from the head
  /// (snd_una) — the segment builder's gather, reading mbuf-backed spans
  /// directly from their still-live data rooms (retransmission re-reads
  /// the same room).
  void peek(std::size_t off, std::span<std::byte> out) const;

  /// Drop `n` bytes from the head (cumulative ACK). Fully-acked mbuf
  /// segments release their reference to the pool; a partial ACK trims the
  /// head slice in place.
  void consume(std::size_t n);

  /// Release every retained mbuf reference and drop all queued bytes
  /// (connection teardown: FIN completion reaps via the destructor, RST /
  /// RTO give-up call this eagerly so a lingering PCB pins nothing).
  void release_all();

 private:
  struct Seg {
    updk::Mbuf* m = nullptr;  // nullptr => bytes live in the copy ring
    std::uint32_t off = 0;    // mbuf-backed: data-room offset of byte 0
    std::uint32_t len = 0;    // unacked bytes remaining in this segment
  };

  void append_copied(std::size_t n);

  SockBuf ring_;  // copy-backed bytes (in chain order, FIFO)
  updk::Mempool* pool_ = nullptr;
  TxStats* stats_ = nullptr;
  std::deque<Seg> segs_;
  std::size_t used_ = 0;
};

}  // namespace cherinet::fstack
