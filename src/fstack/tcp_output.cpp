// TCP segment construction and the send decision (RFC 793 send window,
// RFC 5681 cwnd limit, delayed-ACK piggybacking, FIN sequencing).
#include <algorithm>

#include "fstack/tcp_pcb.hpp"

namespace cherinet::fstack {

bool TcpPcb::send_segment(std::uint32_t seq, std::size_t payload_off,
                          std::size_t len, std::uint8_t flags) {
  TcpHeader h;
  h.src_port = tuple_.local_port;
  h.dst_port = tuple_.remote_port;
  h.seq = seq;
  h.flags = flags;
  if ((flags & tcpflag::kSyn) == 0 || (flags & tcpflag::kAck) != 0) {
    h.flags |= tcpflag::kAck;
    h.ack = rcv_nxt_;
  }
  // Advertised window: free receive buffer, scaled when negotiated.
  const auto wnd_bytes = static_cast<std::uint32_t>(rx_.window_free());
  if ((flags & tcpflag::kSyn) != 0) {
    h.window = static_cast<std::uint16_t>(std::min(wnd_bytes, 65535u));
  } else if (ws_on_) {
    h.window = static_cast<std::uint16_t>(
        std::min(wnd_bytes >> rcv_wscale_, 65535u));
  } else {
    h.window = static_cast<std::uint16_t>(std::min(wnd_bytes, 65535u));
  }

  TcpOptions opts;
  if ((flags & tcpflag::kSyn) != 0) {
    opts.mss = cfg_.mss;
    if (cfg_.use_wscale) opts.wscale = cfg_.wscale;
    if (cfg_.use_timestamps) opts.timestamps = {env_->tcp_ts_now(), ts_recent_};
  } else if (ts_on_) {
    opts.timestamps = {env_->tcp_ts_now(), ts_recent_};
  }
  h.data_off =
      static_cast<std::uint8_t>((TcpHeader::kSize + opts.encoded_size()) / 4);

  if (!env_->tcp_emit(*this, h, opts, payload_off, len)) return false;
  counters_.segs_out++;
  counters_.bytes_out += len;
  // Any segment carries our current ACK: delayed-ACK state is satisfied.
  ack_pending_ = false;
  ack_now_ = false;
  segs_since_ack_ = 0;
  delack_deadline_.reset();
  ack_flush_deadline_.reset();
  return true;
}

bool TcpPcb::send_control(std::uint8_t flags) {
  if ((flags & tcpflag::kSyn) != 0) {
    const std::uint32_t seq = snd_nxt_;
    if (!send_segment(seq, 0, 0, flags)) return false;
    snd_nxt_ = seq + 1;
    return true;
  }
  return send_segment(snd_nxt_, 0, 0, flags);
}

void TcpPcb::arm_rexmit() {
  rexmit_deadline_ = env_->tcp_now() + rto_;
}

bool TcpPcb::output() {
  if (state_ == TcpState::kClosed || state_ == TcpState::kListen) {
    return false;
  }
  bool sent_any = false;

  const bool may_send_data = state_ == TcpState::kEstablished ||
                             state_ == TcpState::kCloseWait;
  if (may_send_data && syn_acked_ && !fin_sent_) {
    // Limited transmit (RFC 3042): the first two dupacks each extend the
    // usable window by one MSS of NEW data, keeping the ACK clock alive
    // when a tail loss leaves too little in flight to raise the three
    // dupacks fast retransmit needs — without it those losses only ever
    // resolve by RTO. The allowance vanishes once recovery starts (the
    // inflation term takes over) or a new ACK resets dupacks_.
    const std::uint32_t limited_xmit =
        (!in_recovery_ && dupacks_ > 0) ? std::min(dupacks_, 2u) * mss_eff_
                                        : 0;
    const std::uint32_t wnd = std::min(snd_wnd_, cwnd_ + limited_xmit);
    // Segment size bound: one MSS on the software path, up to tso_max_segs
    // MSS as a single TSO super-segment when the queue negotiated slicing
    // (make_pcb pins tso_max_segs to 1 otherwise). The device restores the
    // per-MSS wire framing; cwnd/window arithmetic is byte-based throughout
    // so a super-segment consumes exactly what its MSS frames would.
    const std::size_t seg_cap =
        static_cast<std::size_t>(mss_eff_) *
        std::max<std::uint32_t>(1, cfg_.tso_max_segs);
    while (true) {
      const std::uint32_t offset = snd_nxt_ - snd_una_;
      const std::size_t avail =
          snd_.used() > offset ? snd_.used() - offset : 0;
      const std::uint32_t usable = wnd > offset ? wnd - offset : 0;
      std::size_t n = std::min<std::size_t>(
          {avail, static_cast<std::size_t>(usable), seg_cap});
      // Sender-side silly-window avoidance (RFC 1122 §4.2.3.4): a segment
      // cut short by the WINDOW (not by running out of data) waits for the
      // in-flight bytes to be acknowledged instead of emitting a runt.
      // Keeping segments MSS-sized also keeps them aligned with the send
      // chain's slices, so emission composes cached checksums instead of
      // re-reading payload. Safe: offset > 0 here (the window is partly
      // used), so ACKs are expected and the rexmit timer is armed; windows
      // smaller than one MSS keep the old behaviour (no deadlock).
      if (n > 0 && n < mss_eff_ && n < avail && wnd >= mss_eff_) {
        break;
      }
      const bool last_chunk = n == avail;
      const bool fin_rides = fin_queued_ && last_chunk;
      if (n == 0 && !(fin_rides && avail == 0)) break;

      std::uint8_t flags = tcpflag::kAck;
      if (n > 0 && last_chunk) flags |= tcpflag::kPsh;
      if (fin_rides) flags |= tcpflag::kFin;
      if (!send_segment(snd_nxt_, offset, n, flags)) break;
      if (!rtt_timing_ && n > 0) {
        rtt_timing_ = true;
        rtt_seq_ = snd_nxt_;
        rtt_started_ = env_->tcp_now();
      }
      snd_nxt_ += static_cast<std::uint32_t>(n);
      if (fin_rides) {
        fin_sent_ = true;
        snd_nxt_ += 1;
        set_state(state_ == TcpState::kEstablished ? TcpState::kFinWait1
                                                   : TcpState::kLastAck);
      }
      arm_rexmit();
      sent_any = true;
      if (fin_rides) break;
    }

    // Zero-window probe: data waiting but the peer closed its window.
    if (!sent_any && snd_wnd_ == 0 &&
        snd_.used() > (snd_nxt_ - snd_una_) && !persist_deadline_) {
      persist_deadline_ =
          env_->tcp_now() + cfg_.persist_base * (1u << persist_shift_);
    }
  }

  if (!sent_any && ack_now_) {
    sent_any = send_control(tcpflag::kAck);
  }
  return sent_any;
}

}  // namespace cherinet::fstack
