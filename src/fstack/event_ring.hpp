// FfEventRing: the caller-provided capability ring multishot epoll fills.
//
// v3 note: ff_uring (fstack/uring.hpp) generalizes this channel — an
// OP_EPOLL_ARM submission routes the SAME readiness stream (same
// EpollInstance mask/generation dedup) into the unified completion queue
// alongside accepted fds and zc loans. This dedicated event ring remains
// as the v2 surface behind ff_epoll_wait_multishot; see the v2->v3 table
// in api.hpp.
//
// One armed ff_epoll_wait_multishot hands the stack a bounded, writable
// capability into application memory; from then on the stack's main loop
// publishes readiness-change events into the ring across iterations and the
// application consumes them with plain capability loads — ZERO compartment
// crossings per wait (io_uring-style multishot, paper ROADMAP item). The
// ring is SPSC: the stack is the only producer (tail), the application the
// only consumer (head); both indices are free-running u32s published with
// release stores and read with acquire loads through tagged memory's atomic
// word ops, so the two compartments never race on payload bytes.
//
// Layout (all little-endian host order, offsets in bytes):
//   [0]  u32 head      — consumer cursor (app-owned)
//   [4]  u32 tail      — producer cursor (stack-owned)
//   [8]  u32 capacity  — event slots (written at arm time, diagnostic)
//   [12] u32 overflow  — publish attempts blocked by a full ring. Blocked
//        events are RETRIED (not lost) on later iterations, so this is a
//        backpressure indicator and may count one slow-to-drain event
//        several times
//   [16] events: capacity * 12 bytes, each { u32 events, u64 data }
#pragma once

#include <cstdint>
#include <span>

#include "fstack/epoll.hpp"
#include "machine/cap_view.hpp"

namespace cherinet::fstack {

class FfEventRing {
 public:
  static constexpr std::uint32_t kHeaderBytes = 16;
  static constexpr std::uint32_t kEventBytes = 12;

  /// Bytes of backing memory a ring of `capacity` slots needs.
  [[nodiscard]] static constexpr std::size_t bytes_for(
      std::uint32_t capacity) noexcept {
    return kHeaderBytes + static_cast<std::size_t>(capacity) * kEventBytes;
  }

  /// Capacities must be powers of two: the free-running u32 cursors map to
  /// slots with a mask, which stays continuous across index wraparound
  /// (a modulo by a non-power-of-two would jump slots at 2^32).
  [[nodiscard]] static constexpr bool valid_capacity(
      std::uint32_t capacity) noexcept {
    return capacity != 0 && (capacity & (capacity - 1)) == 0;
  }

  FfEventRing() = default;
  /// Wrap (and zero-initialize) ring memory of at least bytes_for(capacity).
  FfEventRing(machine::CapView mem, std::uint32_t capacity)
      : mem_(mem), capacity_(capacity) {
    mem_.atomic_store_u32(0, 0);
    mem_.atomic_store_u32(4, 0);
    mem_.atomic_store_u32(8, capacity);
    mem_.atomic_store_u32(12, 0);
  }

  [[nodiscard]] const machine::CapView& memory() const noexcept {
    return mem_;
  }
  [[nodiscard]] std::uint32_t capacity() const noexcept { return capacity_; }

  /// Consume up to out.size() published events — pure capability loads, no
  /// crossing. Returns the number popped.
  std::size_t pop(std::span<FfEpollEvent> out) {
    const std::uint32_t tail = mem_.atomic_load_u32(4);  // acquire
    std::uint32_t head = mem_.atomic_load_u32(0);
    std::size_t n = 0;
    while (n < out.size() && head != tail) {
      const std::uint32_t slot = head & (capacity_ - 1);
      const std::uint64_t off =
          kHeaderBytes + static_cast<std::uint64_t>(slot) * kEventBytes;
      out[n].events = mem_.load<std::uint32_t>(off);
      out[n].data = mem_.load<std::uint64_t>(off + 4);
      ++head;
      ++n;
    }
    if (n > 0) mem_.atomic_store_u32(0, head);  // release the slots
    return n;
  }

  /// Publish attempts the producer had to defer because the ring was full
  /// (a backpressure signal — deferred events retry and are never lost).
  [[nodiscard]] std::uint32_t overflows() const {
    return mem_.atomic_load_u32(12);
  }

 private:
  machine::CapView mem_;
  std::uint32_t capacity_ = 0;
};

}  // namespace cherinet::fstack
