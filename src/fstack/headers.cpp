#include "fstack/headers.hpp"

#include <cstring>

#include "fstack/checksum.hpp"

namespace cherinet::fstack {

// ----------------------------------------------------------------- Ethernet
std::optional<EtherHeader> EtherHeader::parse(
    std::span<const std::byte> b) noexcept {
  if (b.size() < kSize) return std::nullopt;
  EtherHeader h;
  std::memcpy(h.dst.bytes.data(), b.data(), 6);
  std::memcpy(h.src.bytes.data(), b.data() + 6, 6);
  h.ethertype = get_be16(b.data() + 12);
  return h;
}

void EtherHeader::serialize(std::span<std::byte> b) const noexcept {
  std::memcpy(b.data(), dst.bytes.data(), 6);
  std::memcpy(b.data() + 6, src.bytes.data(), 6);
  put_be16(b.data() + 12, ethertype);
}

// ---------------------------------------------------------------------- ARP
std::optional<ArpHeader> ArpHeader::parse(
    std::span<const std::byte> b) noexcept {
  if (b.size() < kSize) return std::nullopt;
  if (get_be16(b.data()) != 1 /*Ethernet*/ ||
      get_be16(b.data() + 2) != kEtherTypeIpv4 ||
      static_cast<std::uint8_t>(b[4]) != 6 ||
      static_cast<std::uint8_t>(b[5]) != 4) {
    return std::nullopt;
  }
  ArpHeader h;
  h.oper = get_be16(b.data() + 6);
  std::memcpy(h.sha.bytes.data(), b.data() + 8, 6);
  h.spa.value = get_be32(b.data() + 14);
  std::memcpy(h.tha.bytes.data(), b.data() + 18, 6);
  h.tpa.value = get_be32(b.data() + 24);
  return h;
}

void ArpHeader::serialize(std::span<std::byte> b) const noexcept {
  put_be16(b.data(), 1);
  put_be16(b.data() + 2, kEtherTypeIpv4);
  b[4] = std::byte{6};
  b[5] = std::byte{4};
  put_be16(b.data() + 6, oper);
  std::memcpy(b.data() + 8, sha.bytes.data(), 6);
  put_be32(b.data() + 14, spa.value);
  std::memcpy(b.data() + 18, tha.bytes.data(), 6);
  put_be32(b.data() + 24, tpa.value);
}

// --------------------------------------------------------------------- IPv4
std::optional<Ipv4Header> Ipv4Header::parse(
    std::span<const std::byte> b, bool verify_checksum) noexcept {
  if (b.size() < kSize) return std::nullopt;
  const auto vihl = static_cast<std::uint8_t>(b[0]);
  if ((vihl >> 4) != 4) return std::nullopt;
  Ipv4Header h;
  h.ihl = vihl & 0x0F;
  if (h.ihl < 5 || b.size() < h.header_len()) return std::nullopt;
  h.tos = static_cast<std::uint8_t>(b[1]);
  h.total_len = get_be16(b.data() + 2);
  h.id = get_be16(b.data() + 4);
  h.flags_frag = get_be16(b.data() + 6);
  h.ttl = static_cast<std::uint8_t>(b[8]);
  h.proto = static_cast<std::uint8_t>(b[9]);
  h.checksum = get_be16(b.data() + 10);
  h.src.value = get_be32(b.data() + 12);
  h.dst.value = get_be32(b.data() + 16);
  // Qualified call: the member field `checksum` shadows the free function.
  if (verify_checksum &&
      cherinet::fstack::checksum(b.subspan(0, h.header_len())) != 0) {
    return std::nullopt;
  }
  return h;
}

void Ipv4Header::serialize(std::span<std::byte> b) const noexcept {
  b[0] = static_cast<std::byte>((4u << 4) | ihl);
  b[1] = std::byte{tos};
  put_be16(b.data() + 2, total_len);
  put_be16(b.data() + 4, id);
  put_be16(b.data() + 6, flags_frag);
  b[8] = std::byte{ttl};
  b[9] = std::byte{proto};
  put_be16(b.data() + 10, 0);
  put_be32(b.data() + 12, src.value);
  put_be32(b.data() + 16, dst.value);
  const std::uint16_t ck = cherinet::fstack::checksum(
      std::span<const std::byte>{b.data(), std::size_t{ihl} * 4});
  put_be16(b.data() + 10, ck);
}

// --------------------------------------------------------------------- ICMP
std::optional<IcmpHeader> IcmpHeader::parse(
    std::span<const std::byte> b) noexcept {
  if (b.size() < kSize) return std::nullopt;
  IcmpHeader h;
  h.type = static_cast<std::uint8_t>(b[0]);
  h.code = static_cast<std::uint8_t>(b[1]);
  h.checksum = get_be16(b.data() + 2);
  h.id = get_be16(b.data() + 4);
  h.seq = get_be16(b.data() + 6);
  return h;
}

void IcmpHeader::serialize(std::span<std::byte> b) const noexcept {
  b[0] = std::byte{type};
  b[1] = std::byte{code};
  put_be16(b.data() + 2, checksum);
  put_be16(b.data() + 4, id);
  put_be16(b.data() + 6, seq);
}

// ---------------------------------------------------------------------- UDP
std::optional<UdpHeader> UdpHeader::parse(
    std::span<const std::byte> b) noexcept {
  if (b.size() < kSize) return std::nullopt;
  UdpHeader h;
  h.src_port = get_be16(b.data());
  h.dst_port = get_be16(b.data() + 2);
  h.length = get_be16(b.data() + 4);
  h.checksum = get_be16(b.data() + 6);
  return h;
}

void UdpHeader::serialize(std::span<std::byte> b) const noexcept {
  put_be16(b.data(), src_port);
  put_be16(b.data() + 2, dst_port);
  put_be16(b.data() + 4, length);
  put_be16(b.data() + 6, checksum);
}

// -------------------------------------------------------------- TCP options
std::size_t TcpOptions::encoded_size() const noexcept {
  std::size_t n = 0;
  if (mss) n += 4;
  if (wscale) n += 3;
  if (timestamps) n += 10;
  return (n + 3) / 4 * 4;
}

std::size_t TcpOptions::serialize(std::span<std::byte> b) const noexcept {
  std::size_t i = 0;
  if (mss) {
    b[i] = std::byte{2};
    b[i + 1] = std::byte{4};
    put_be16(b.data() + i + 2, *mss);
    i += 4;
  }
  if (wscale) {
    b[i] = std::byte{3};
    b[i + 1] = std::byte{3};
    b[i + 2] = std::byte{*wscale};
    i += 3;
  }
  if (timestamps) {
    b[i] = std::byte{8};
    b[i + 1] = std::byte{10};
    put_be32(b.data() + i + 2, timestamps->first);
    put_be32(b.data() + i + 6, timestamps->second);
    i += 10;
  }
  while (i % 4 != 0) b[i++] = std::byte{1};  // NOP pad
  return i;
}

TcpOptions TcpOptions::parse(std::span<const std::byte> b) noexcept {
  TcpOptions o;
  std::size_t i = 0;
  while (i < b.size()) {
    const auto kind = static_cast<std::uint8_t>(b[i]);
    if (kind == 0) break;   // END
    if (kind == 1) {        // NOP
      ++i;
      continue;
    }
    if (i + 1 >= b.size()) break;
    const auto len = static_cast<std::uint8_t>(b[i + 1]);
    if (len < 2 || i + len > b.size()) break;
    switch (kind) {
      case 2:
        if (len == 4) o.mss = get_be16(b.data() + i + 2);
        break;
      case 3:
        if (len == 3) o.wscale = static_cast<std::uint8_t>(b[i + 2]);
        break;
      case 8:
        if (len == 10) {
          o.timestamps = {get_be32(b.data() + i + 2),
                          get_be32(b.data() + i + 6)};
        }
        break;
      default:
        break;  // unknown option: skip
    }
    i += len;
  }
  return o;
}

// ---------------------------------------------------------------------- TCP
std::optional<TcpHeader> TcpHeader::parse(
    std::span<const std::byte> b) noexcept {
  if (b.size() < kSize) return std::nullopt;
  TcpHeader h;
  h.src_port = get_be16(b.data());
  h.dst_port = get_be16(b.data() + 2);
  h.seq = get_be32(b.data() + 4);
  h.ack = get_be32(b.data() + 8);
  h.data_off = static_cast<std::uint8_t>(b[12]) >> 4;
  h.flags = static_cast<std::uint8_t>(b[13]);
  h.window = get_be16(b.data() + 14);
  h.checksum = get_be16(b.data() + 16);
  h.urgent = get_be16(b.data() + 18);
  if (h.data_off < 5 || b.size() < h.header_len()) return std::nullopt;
  return h;
}

void TcpHeader::serialize(std::span<std::byte> b) const noexcept {
  put_be16(b.data(), src_port);
  put_be16(b.data() + 2, dst_port);
  put_be32(b.data() + 4, seq);
  put_be32(b.data() + 8, ack);
  b[12] = static_cast<std::byte>(data_off << 4);
  b[13] = std::byte{flags};
  put_be16(b.data() + 14, window);
  put_be16(b.data() + 16, 0);
  put_be16(b.data() + 18, urgent);
}

}  // namespace cherinet::fstack
