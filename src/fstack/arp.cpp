#include "fstack/arp.hpp"

namespace cherinet::fstack {

std::optional<nic::MacAddr> ArpCache::lookup(Ipv4Addr ip, sim::Ns now) const {
  const auto it = cache_.find(ip);
  if (it == cache_.end() || now >= it->second.expires) return std::nullopt;
  return it->second.mac;
}

void ArpCache::insert(Ipv4Addr ip, nic::MacAddr mac, sim::Ns now) {
  cache_[ip] = Entry{mac, now + cfg_.entry_ttl};
}

bool ArpCache::park(Ipv4Addr next_hop, updk::Mbuf* frame, sim::Ns now) {
  if (frame == nullptr) return false;
  Hop& hop = pending_[next_hop];
  const std::size_t bytes = frame->pkt_len();
  if (hop.frames.size() >= cfg_.max_pending_per_hop ||
      hop.bytes + bytes > cfg_.max_pending_bytes_per_hop) {
    stats_.drops++;
    stats_.dropped_bytes += bytes;
    return false;
  }
  if (hop.frames.empty()) hop.oldest = now;
  hop.frames.push_back(frame);
  hop.bytes += bytes;
  stats_.parked++;
  return true;
}

std::vector<updk::Mbuf*> ArpCache::take_expired(sim::Ns now) {
  std::vector<updk::Mbuf*> out;
  for (auto it = pending_.begin(); it != pending_.end();) {
    Hop& hop = it->second;
    if (!hop.frames.empty() && now - hop.oldest >= cfg_.pending_ttl) {
      stats_.expired += hop.frames.size();
      out.insert(out.end(), hop.frames.begin(), hop.frames.end());
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  return out;
}

std::optional<sim::Ns> ArpCache::next_expiry() const {
  std::optional<sim::Ns> d;
  for (const auto& [ip, hop] : pending_) {
    if (hop.frames.empty()) continue;
    const sim::Ns e = hop.oldest + cfg_.pending_ttl;
    if (!d || e < *d) d = e;
  }
  return d;
}

std::vector<updk::Mbuf*> ArpCache::take_parked(Ipv4Addr ip) {
  const auto it = pending_.find(ip);
  if (it == pending_.end()) return {};
  auto out = std::move(it->second.frames);
  pending_.erase(it);
  return out;
}

std::vector<updk::Mbuf*> ArpCache::take_all_parked() {
  std::vector<updk::Mbuf*> out;
  for (auto& [ip, hop] : pending_) {
    out.insert(out.end(), hop.frames.begin(), hop.frames.end());
  }
  pending_.clear();
  return out;
}

bool ArpCache::should_request(Ipv4Addr ip, sim::Ns now) {
  const auto it = last_request_.find(ip);
  if (it != last_request_.end() && now - it->second < cfg_.request_interval) {
    return false;
  }
  last_request_[ip] = now;
  return true;
}

std::size_t ArpCache::pending_packets() const noexcept {
  std::size_t n = 0;
  for (const auto& [ip, hop] : pending_) n += hop.frames.size();
  return n;
}

std::size_t ArpCache::pending_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& [ip, hop] : pending_) n += hop.bytes;
  return n;
}

}  // namespace cherinet::fstack
