#include "fstack/arp.hpp"

namespace cherinet::fstack {

std::optional<nic::MacAddr> ArpCache::lookup(Ipv4Addr ip, sim::Ns now) const {
  const auto it = cache_.find(ip);
  if (it == cache_.end() || now >= it->second.expires) return std::nullopt;
  return it->second.mac;
}

void ArpCache::insert(Ipv4Addr ip, nic::MacAddr mac, sim::Ns now) {
  cache_[ip] = Entry{mac, now + cfg_.entry_ttl};
}

bool ArpCache::queue_pending(Ipv4Addr next_hop,
                             std::vector<std::byte> ip_packet) {
  auto& q = pending_[next_hop];
  if (q.size() >= cfg_.max_pending_per_hop) return false;
  q.push_back(std::move(ip_packet));
  return true;
}

std::vector<std::vector<std::byte>> ArpCache::take_pending(Ipv4Addr ip) {
  const auto it = pending_.find(ip);
  if (it == pending_.end()) return {};
  auto out = std::move(it->second);
  pending_.erase(it);
  return out;
}

bool ArpCache::should_request(Ipv4Addr ip, sim::Ns now) {
  const auto it = last_request_.find(ip);
  if (it != last_request_.end() && now - it->second < cfg_.request_interval) {
    return false;
  }
  last_request_[ip] = now;
  return true;
}

std::size_t ArpCache::pending_packets() const noexcept {
  std::size_t n = 0;
  for (const auto& [ip, q] : pending_) n += q.size();
  return n;
}

}  // namespace cherinet::fstack
