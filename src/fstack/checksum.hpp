// Internet checksum (RFC 1071) with pseudo-header support for TCP/UDP.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "fstack/inet.hpp"

namespace cherinet::fstack {

/// Running one's-complement sum; fold with checksum_finish().
[[nodiscard]] std::uint32_t checksum_partial(std::span<const std::byte> data,
                                             std::uint32_t sum = 0) noexcept;

/// IPv4 pseudo-header contribution for TCP(6)/UDP(17).
[[nodiscard]] std::uint32_t checksum_pseudo(Ipv4Addr src, Ipv4Addr dst,
                                            std::uint8_t proto,
                                            std::uint16_t l4_len,
                                            std::uint32_t sum = 0) noexcept;

/// Fold to the final 16-bit one's-complement checksum.
[[nodiscard]] std::uint16_t checksum_finish(std::uint32_t sum) noexcept;

/// One-shot checksum of a contiguous region.
[[nodiscard]] inline std::uint16_t checksum(
    std::span<const std::byte> data) noexcept {
  return checksum_finish(checksum_partial(data));
}

}  // namespace cherinet::fstack
