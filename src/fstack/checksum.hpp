// Internet checksum (RFC 1071) with pseudo-header support for TCP/UDP.
//
// Since the scatter-gather emission rework, checksums compose instead of
// re-reading payload: every slice admitted into a send queue caches its own
// partial sum (computed once, when the bytes enter the stack), and
// checksum_combine() folds those cached partials into a segment sum at any
// byte offset — the one's-complement sum is byte-order sensitive, so a
// partial that lands on an odd offset is byte-swapped before it is added
// (the classic RFC 1071 §2(C) trick). Per-segment checksumming is therefore
// O(#slices), not O(bytes), and emission never touches payload memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "fstack/inet.hpp"
#include "machine/cap_view.hpp"

namespace cherinet::fstack {

/// Running one's-complement sum; fold with checksum_finish().
[[nodiscard]] std::uint32_t checksum_partial(std::span<const std::byte> data,
                                             std::uint32_t sum = 0) noexcept;

/// IPv4 pseudo-header contribution for TCP(6)/UDP(17).
[[nodiscard]] std::uint32_t checksum_pseudo(Ipv4Addr src, Ipv4Addr dst,
                                            std::uint8_t proto,
                                            std::uint16_t l4_len,
                                            std::uint32_t sum = 0) noexcept;

/// Fold a running sum to 16 bits WITHOUT the final inversion — the form a
/// cached partial is stored in (checksum_combine byte-swaps it when the
/// slice lands on an odd offset; an inverted sum could not be swapped).
[[nodiscard]] constexpr std::uint16_t checksum_fold16(
    std::uint32_t sum) noexcept {
  while ((sum >> 16) != 0) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(sum);
}

/// Fold to the final 16-bit one's-complement checksum.
[[nodiscard]] std::uint16_t checksum_finish(std::uint32_t sum) noexcept;

/// Fold `part` (the partial sum of a slice, computed as if the slice began
/// on an EVEN offset) into `sum` with the slice actually starting at byte
/// offset `at` of the checksummed range. Odd offsets byte-swap the folded
/// partial (RFC 1071 §2(C)): sums stay composable across arbitrary splits.
[[nodiscard]] constexpr std::uint32_t checksum_combine(
    std::uint32_t sum, std::uint32_t part, std::size_t at) noexcept {
  std::uint16_t f = checksum_fold16(part);
  if ((at & 1) != 0) {
    f = static_cast<std::uint16_t>(((f & 0xFF) << 8) | (f >> 8));
  }
  return sum + f;
}

/// checksum_partial of `data` combined into `sum` at range offset `at`
/// (convenience for producers that accumulate a slice sum chunk by chunk).
[[nodiscard]] inline std::uint32_t checksum_partial_at(
    std::span<const std::byte> data, std::size_t at,
    std::uint32_t sum) noexcept {
  return checksum_combine(sum, checksum_partial(data), at);
}

/// Partial sum of [off, off+len) read THROUGH a capability view — scalar
/// loads only, no bounce buffer (the 512-byte scratch loops the datapath
/// used to checksum through are gone). The result is even-aligned relative
/// to `off` (combine with checksum_combine at the slice's packet offset).
[[nodiscard]] std::uint32_t checksum_cap_partial(const machine::CapView& v,
                                                 std::uint64_t off,
                                                 std::size_t len,
                                                 std::uint32_t sum = 0);

/// One-shot checksum of a contiguous region.
[[nodiscard]] inline std::uint16_t checksum(
    std::span<const std::byte> data) noexcept {
  return checksum_finish(checksum_partial(data));
}

}  // namespace cherinet::fstack
