#include "fstack/stack.hpp"

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "fstack/checksum.hpp"
#include "fstack/event_ring.hpp"

namespace cherinet::fstack {

namespace {
constexpr std::size_t kRxBurst = 32;
constexpr std::size_t kFrameScratch = 1664;  // MTU + headers + slack
// Most source extents one emitted frame may gather (header mbuf + this
// many indirect payload segments). A range more fragmented than this
// linearizes into the frame instead — a 9-descriptor chain stops paying.
constexpr std::size_t kMaxTxPieces = 8;
// A TSO super-segment spans up to tso_max_segs MSS of payload, so its
// gather budget scales with the slice count (worst case: every MSS its own
// zc slice plus ring-wrap splits). The descriptor cost is amortized over
// the whole super-segment, so the 8-piece economy bound does not apply.
constexpr std::size_t kMaxTsoPieces = 40;

/// Copy a queued datagram out to a caller capability (loan- or copy-backed
/// alike) — the one block ff_recvfrom and ff_recvmsg_batch share, so the
/// clamping and census accounting cannot diverge.
std::size_t udp_copy_out(const fstack::UdpDatagram& d,
                         const machine::CapView& dst, std::size_t n) {
  const std::size_t copy = std::min(n, d.size());
  if (d.mbuf != nullptr) {
    std::byte scratch[512];
    machine::cap_copy(dst, 0, d.mbuf->room.window(d.off, copy), 0, copy,
                      scratch);
  } else {
    dst.write(0, std::span<const std::byte>{d.data.data(), copy});
  }
  return copy;
}

/// Receive-side sweep: byte counts are clamped to the capability's bounds
/// (matching v1 read semantics, where a datagram shorter than the claimed
/// length still lands) but permission/tag/seal violations fault the batch.
/// Loan-mode requests (INVALID buf AND len == 0 — the explicit v3 opt-in)
/// have no destination to validate; an invalid buf WITH a byte count is a
/// forged destination and still faults the batch like v2.
void sweep_msgs_store(std::span<const fstack::FfMsg> msgs) {
  for (const fstack::FfMsg& m : msgs) {
    if (!m.buf.valid() && m.len == 0) continue;  // loan-mode request
    if (m.len == 0) continue;
    std::size_t probe = std::min<std::size_t>(m.len, m.buf.size());
    if (probe == 0) probe = 1;  // zero-sized view: surface the bounds fault
    const cheri::Capability& c = m.buf.cap();
    c.check(cheri::Access::kStore, c.address(), probe);
  }
}
}  // namespace

FfStack::FfStack(StackConfig cfg, updk::EthDev* dev, updk::Mempool* pool,
                 machine::CompartmentHeap* heap, sim::VirtualClock* clock)
    : cfg_(std::move(cfg)),
      dev_(dev),
      pool_(pool),
      heap_(heap),
      clock_(clock),
      socks_(cfg_.max_sockets),
      iss_state_(cfg_.iss_seed) {
  // Negotiate offloads once at attach: the device reports its effective
  // per-queue capability set and the stack never requests past it, so a
  // masked-off queue runs the pure software path with no per-packet branch
  // ever consulting the device again.
  offloads_neg_ = dev_->offloads();
  tx_tcp_csum_ = (offloads_neg_ & updk::kOffloadTxTcpCsum) != 0;
  tx_udp_csum_ = (offloads_neg_ & updk::kOffloadTxUdpCsum) != 0;
  tso_ = (offloads_neg_ & updk::kOffloadTxTso) != 0;
  // Without TSO every PCB stays on per-MSS emission, whatever the config
  // requested — a super-segment without a slicing device would hit the
  // over-MTU fragmentation fallback on every send.
  if (!tso_) cfg_.tcp.tso_max_segs = 1;
}

FfStack::~FfStack() {
  // Release zero-copy reservations the application never submitted and
  // loans it never recycled; drop staged frames and ARP-parked frames
  // back to the pool (nothing transmits during teardown).
  for (auto& [token, res] : zc_pending_) pool_->free(res.m);
  for (auto& [token, loan] : zc_rx_loans_) pool_->recycle(loan.m);
  for (updk::Mbuf* m : qos_.drain_all()) pool_->free_chain(m);
  for (updk::Mbuf* m : arp_.take_all_parked()) pool_->free_chain(m);
}

// ===========================================================================
// Main loop
// ===========================================================================

bool FfStack::run_once() {
  bool progress = false;

  updk::Mbuf* rx[kRxBurst];
  const std::size_t n = dev_->rx_burst({rx, kRxBurst});
  for (std::size_t i = 0; i < n; ++i) {
    std::byte scratch[kFrameScratch];
    const std::size_t len =
        std::min<std::size_t>(rx[i]->data_len, sizeof scratch);
    rx[i]->data().read(0, std::span<std::byte>{scratch, len});
    stats_.rx_frames++;
    // The scratch read above is the emulated capability-checked load of
    // the frame for HEADER parsing (on hardware the stack reads the same
    // bytes through the mbuf capability); the copy the zero-copy pipeline
    // eliminates — and the RX census counts — is the per-byte transfer of
    // PAYLOAD into socket buffers. While this frame is in flight, protocol
    // handlers convert payload spans back into (mbuf, offset) slices and
    // queue them zero-copy.
    rx_cur_ = rx[i];
    rx_cur_base_ = scratch;
    rx_cur_len_ = len;
    rx_cur_ol_ = rx[i]->ol_flags;  // the driver's checksum verdicts
    ether_input(std::span<const std::byte>{scratch, len});
    rx_cur_ = nullptr;
    rx_cur_base_ = nullptr;
    rx_cur_len_ = 0;
    rx_cur_ol_ = 0;
  }
  // Return the burst in one pass; data rooms queued onward as loans stay
  // alive through their extra reference and return via Mempool::recycle.
  pool_->free_bulk({rx, n});
  progress |= n > 0;

  // Expire DUE timers only: the hierarchical wheel replaces the old
  // every-PCB deadline walk (ARP pending-TTL drops ride the same wheel
  // under the reserved cookie).
  process_timers(clock_->now(), progress);

  if (!pending_output_.empty()) {
    for (TcpPcb* pcb : pending_output_) {
      progress |= pcb->output();
      timer_sync(pcb);
    }
    pending_output_.clear();
  }

  // Drain every attached ff_uring: consume submissions, publish
  // completions, service multishot accept arms — zero crossings per op.
  progress |= drain_urings();

  // Everything this turn emitted leaves in ONE driver burst: the doorbell
  // amortizes per iteration like the compartment boundary already does.
  progress |= flush_tx() > 0;

  reap_closed();
  publish_multishot();
  return progress;
}

std::optional<MbufSlice> FfStack::rx_slice_of(
    std::span<const std::byte> bytes) const {
  if (rx_cur_ == nullptr || bytes.empty()) return std::nullopt;
  const std::byte* base = rx_cur_base_;
  if (bytes.data() < base || bytes.data() + bytes.size() > base + rx_cur_len_) {
    return std::nullopt;  // reassembled or stack-synthesized bytes
  }
  const auto off = static_cast<std::uint32_t>(bytes.data() - base);
  return MbufSlice{rx_cur_, rx_cur_->data_off + off,
                   static_cast<std::uint32_t>(bytes.size())};
}

std::optional<MbufSlice> FfStack::tcp_rx_loan(
    std::span<const std::byte> payload) {
  return rx_slice_of(payload);
}

std::optional<sim::Ns> FfStack::next_deadline() const {
  // O(1)-ish: the wheel's first non-empty slot stands in for every armed
  // PCB deadline and the ARP pending TTL — no per-PCB scan. The wheel
  // reports the TICK BOUNDARY at or after the earliest real deadline
  // (never earlier than a firing time), so advancing the virtual clock to
  // it always makes at least one timer due.
  std::optional<sim::Ns> d = dev_->next_event();
  const auto w = wheel_.next_deadline();
  if (w && (!d || *w < *d)) d = w;
  // Token-bucket pacing: a frame waiting on a QoS bucket becomes eligible
  // at a known virtual instant — the arbiter must wake then or a paced
  // class stalls until unrelated traffic happens to arrive.
  const auto q = qos_.next_release(clock_->now());
  if (q && (!d || *q < *d)) d = q;
  // GRO ack-flush deadlines are reported EXACTLY (no tick ceiling): the
  // arbiter must wake µs after an arrival pause or the flush degrades
  // into the delack it exists to pre-empt.
  for (const TcpPcb* pcb : ack_flush_) {
    const auto f = pcb->ack_flush_deadline();
    if (f && (!d || *f < *d)) d = f;
  }
  return d;
}

void FfStack::timer_sync(TcpPcb* pcb) {
  // The µs-scale GRO ack-flush deadline rides a side list with EXACT
  // reporting (see ack_flush_ in stack.hpp); membership is lazily pruned
  // in process_timers once the deadline disarms.
  if (pcb->ack_flush_deadline() && !pcb->flush_listed) {
    ack_flush_.push_back(pcb);
    pcb->flush_listed = true;
  }
  const auto d = pcb->next_deadline();
  if (d == pcb->wheel_deadline) return;  // registration already accurate
  if (pcb->wheel_id != TimerWheel::kInvalidId) {
    wheel_.cancel(pcb->wheel_id);
    pcb->wheel_id = TimerWheel::kInvalidId;
  }
  pcb->wheel_deadline = d;
  if (d) {
    pcb->wheel_id =
        wheel_.arm(*d, static_cast<std::uint64_t>(
                           reinterpret_cast<std::uintptr_t>(pcb)));
  }
}

void FfStack::arp_timer_sync() {
  const auto d = arp_.next_expiry();
  if (d == arp_wheel_deadline_) return;
  if (arp_wheel_id_ != TimerWheel::kInvalidId) {
    wheel_.cancel(arp_wheel_id_);
    arp_wheel_id_ = TimerWheel::kInvalidId;
  }
  arp_wheel_deadline_ = d;
  if (d) arp_wheel_id_ = wheel_.arm(*d, 0);  // cookie 0: the ARP sentinel
}

void FfStack::process_timers(sim::Ns now, bool& progress) {
  bool any = false;
  wheel_.expire(now, [&](std::uint64_t cookie) {
    if (cookie == 0) {
      // Unresolvable hops must not pin pool buffers: frames parked past
      // the ARP pending TTL drop here (their senders' protocols recover).
      arp_wheel_id_ = TimerWheel::kInvalidId;
      arp_wheel_deadline_.reset();
      for (updk::Mbuf* m : arp_.take_expired(now)) {
        credit_parked_frame(m);
        pool_->free_chain(m);
        any = true;
      }
      arp_timer_sync();  // hops still younger than the TTL re-register
      return;
    }
    auto* pcb =
        reinterpret_cast<TcpPcb*>(static_cast<std::uintptr_t>(cookie));
    pcb->wheel_id = TimerWheel::kInvalidId;  // the entry just fired
    pcb->wheel_deadline.reset();
    any |= pcb->on_timer(now);
    timer_sync(pcb);  // re-register whatever deadline survives the fire
  });
  // GRO ack-flush sweep: fire due idle-flush ACKs, prune entries whose
  // deadline disarmed (the ACK piggybacked on data, or the count trigger
  // sent it first). Swap-erase keeps the sweep allocation-free.
  for (std::size_t i = 0; i < ack_flush_.size();) {
    TcpPcb* pcb = ack_flush_[i];
    if (pcb->ack_flush_deadline()) {
      any |= pcb->fire_ack_flush(now);
      timer_sync(pcb);
    }
    if (!pcb->ack_flush_deadline()) {
      pcb->flush_listed = false;
      ack_flush_[i] = ack_flush_.back();
      ack_flush_.pop_back();
    } else {
      ++i;
    }
  }
  progress |= any;
}

void FfStack::reap_closed() {
  if (detached_.empty()) return;
  for (auto it = detached_.begin(); it != detached_.end();) {
    TcpPcb* pcb = *it;
    if (pcb->closed()) {
      // Outstanding loans outlive their connection: detach them from the
      // dying PCB so recycling degrades to a pure pool return.
      for (auto& [token, loan] : zc_rx_loans_) {
        if (loan.pcb == pcb) loan.pcb = nullptr;
      }
      if (pcb->wheel_id != TimerWheel::kInvalidId) {
        wheel_.cancel(pcb->wheel_id);  // no wheel cookie may dangle
        pcb->wheel_id = TimerWheel::kInvalidId;
      }
      if (pcb->flush_listed) std::erase(ack_flush_, pcb);
      pending_output_.erase(pcb);
      port_unref(pcb->tuple().local_port);
      accumulate_reaped(*pcb);  // recovery history survives the reap
      tcp_pcbs_.erase(pcb->tuple());
      it = detached_.erase(it);
    } else {
      ++it;
    }
  }
}

void FfStack::accumulate_reaped(const TcpPcb& pcb) {
  const TcpPcb::Counters& c = pcb.counters();
  reaped_counters_.rexmits += c.rexmits;
  reaped_counters_.fast_rexmits += c.fast_rexmits;
  reaped_counters_.rto_expirations += c.rto_expirations;
  reaped_counters_.spurious_rexmit_bytes += c.spurious_rexmit_bytes;
}

FfStack::TcpRecoveryStats FfStack::tcp_recovery_stats() const {
  TcpRecoveryStats out;
  const auto add = [&out](const TcpPcb::Counters& c) {
    out.rexmits += c.rexmits;
    out.fast_rexmits += c.fast_rexmits;
    out.rto_expirations += c.rto_expirations;
    out.spurious_rexmit_bytes += c.spurious_rexmit_bytes;
  };
  add(reaped_counters_);
  for (const auto& [tuple, pcb] : tcp_pcbs_) add(pcb->counters());
  for (const auto& [port, pcb] : tcp_listeners_) add(pcb->counters());
  return out;
}

std::uint64_t FfStack::sock_rx_activity(int fd) const {
  const Socket* s = socks_.get(fd);
  if (s == nullptr) return 0;
  switch (s->kind) {
    case SockKind::kTcp:
      if (s->pcb == nullptr) return 0;
      if (s->listening) return s->pcb->accept_ready_total;
      return s->pcb->counters().bytes_in;
    case SockKind::kUdp:
      return s->udp->delivered_total();
    case SockKind::kEpoll:
      break;
  }
  return 0;
}

int FfStack::publish_ready(EpollInstance& ep) {
  int published = 0;
  for (const auto& [fd, interest] : ep.interest()) {
    const std::uint32_t ready =
        sock_readiness(fd) & (interest.events | kEpollErr | kEpollHup);
    if (ep.publish(fd, ready, sock_rx_activity(fd))) {
      api_.multishot_events++;
      ++published;
    }
  }
  return published;
}

void FfStack::publish_multishot() {
  socks_.for_each([this](Socket& s) {
    if (s.kind == SockKind::kEpoll && s.epoll &&
        s.epoll->multishot_armed()) {
      publish_ready(*s.epoll);
    }
  });
}

// ===========================================================================
// Input path
// ===========================================================================

void FfStack::ether_input(std::span<const std::byte> frame) {
  const auto eh = EtherHeader::parse(frame);
  if (!eh) {
    stats_.rx_dropped++;
    return;
  }
  const auto payload = frame.subspan(EtherHeader::kSize);
  switch (eh->ethertype) {
    case kEtherTypeArp:
      arp_input(payload);
      break;
    case kEtherTypeIpv4:
      ipv4_input(payload);
      break;
    default:
      stats_.rx_dropped++;
      break;
  }
}

void FfStack::arp_input(std::span<const std::byte> payload) {
  const auto ah = ArpHeader::parse(payload);
  if (!ah) {
    stats_.rx_dropped++;
    return;
  }
  const sim::Ns now = clock_->now();
  arp_.insert(ah->spa, ah->sha, now);

  // Flush anything parked on this resolution: the Ethernet header the
  // frames were parked without finally prepends into their headroom.
  for (updk::Mbuf* pkt : arp_.take_parked(ah->spa)) {
    credit_parked_frame(pkt);  // the frame leaves park: unpin its budget
    if (prepend_ether(pkt, ah->sha, kEtherTypeIpv4)) stage_frame(pkt);
  }
  arp_timer_sync();  // the resolved hop's pending-TTL deadline is gone

  if (ah->oper == ArpHeader::kOpRequest && ah->tpa == cfg_.netif.ip) {
    send_arp(ArpHeader::kOpReply, ah->sha, ah->spa);
  }
}

void FfStack::ipv4_input(std::span<const std::byte> packet) {
  // Trust the descriptor's IP checksum verdict when the device rendered
  // one: a Bad verdict kills the frame before any field is interpreted,
  // a Good verdict skips the software header sum entirely. Frames without
  // a verdict (offload masked off, non-IP) verify in software as always.
  if ((rx_cur_ol_ & updk::kRxCsumIpBad) != 0) {
    stats_.csum_errors++;
    return;
  }
  const bool ip_checked = (rx_cur_ol_ & updk::kRxCsumIpGood) != 0;
  const auto ih = Ipv4Header::parse(packet, /*verify_checksum=*/!ip_checked);
  if (!ih) {
    stats_.csum_errors++;
    return;
  }
  if (packet.size() < ih->total_len || ih->total_len < ih->header_len()) {
    stats_.rx_dropped++;
    return;
  }
  if (ih->dst != cfg_.netif.ip && !ih->dst.is_broadcast()) {
    stats_.rx_dropped++;
    return;
  }
  std::span<const std::byte> l4 =
      packet.subspan(ih->header_len(), ih->total_len - ih->header_len());

  std::vector<std::byte> reassembled;
  if (ih->more_fragments() || ih->frag_offset_bytes() != 0) {
    auto whole = reasm_.input(*ih, l4, clock_->now());
    if (!whole) return;
    reassembled = std::move(*whole);
    l4 = reassembled;
    // Any L4 verdict covered ONE fragment's bytes, not the reassembled
    // datagram: invalidate it so the L4 handlers verify in software.
    rx_cur_ol_ &= ~(updk::kRxCsumL4Good | updk::kRxCsumL4Bad);
  }

  switch (ih->proto) {
    case kIpProtoIcmp:
      icmp_input(*ih, l4);
      break;
    case kIpProtoTcp:
      tcp_input_seg(*ih, l4);
      break;
    case kIpProtoUdp:
      udp_input(*ih, l4);
      break;
    default:
      stats_.rx_dropped++;
      break;
  }
}

void FfStack::icmp_input(const Ipv4Header& ih,
                         std::span<const std::byte> l4) {
  const auto icmp = IcmpHeader::parse(l4);
  if (!icmp) return;
  if (checksum(l4) != 0) {
    stats_.csum_errors++;
    return;
  }
  if (icmp->type == IcmpHeader::kEchoRequest) {
    const auto reply = build_icmp_echo(IcmpHeader::kEchoReply, icmp->id,
                                       icmp->seq,
                                       l4.subspan(IcmpHeader::kSize));
    send_ipv4(ih.src, kIpProtoIcmp, reply);
  } else if (icmp->type == IcmpHeader::kEchoReply) {
    pings_.on_reply(icmp->id, icmp->seq);
  }
}

void FfStack::udp_input(const Ipv4Header& ih, std::span<const std::byte> l4) {
  const auto uh = UdpHeader::parse(l4);
  if (!uh || uh->length < UdpHeader::kSize || l4.size() < uh->length) return;
  // Device L4 verdict: Bad drops (a corrupted datagram that somehow kept a
  // valid FCS still dies here), Good skips the software walk. No verdict
  // (offload off, checksum-0 datagram, reassembled) verifies in software.
  if ((rx_cur_ol_ & updk::kRxCsumL4Bad) != 0) {
    stats_.csum_errors++;
    return;
  }
  if (uh->checksum != 0 && (rx_cur_ol_ & updk::kRxCsumL4Good) == 0) {
    std::uint32_t sum =
        checksum_pseudo(ih.src, ih.dst, kIpProtoUdp, uh->length);
    sum = checksum_partial(l4.subspan(0, uh->length), sum);
    if (checksum_finish(sum) != 0) {
      stats_.csum_errors++;
      return;
    }
  }
  const auto it = udp_binds_.find(uh->dst_port);
  if (it == udp_binds_.end()) return;
  UdpDatagram d;
  d.src = ih.src;
  d.src_port = uh->src_port;
  d.arrived = clock_->now();  // the burst-timeout reference point
  const auto body = l4.subspan(UdpHeader::kSize, uh->length - UdpHeader::kSize);
  // Queue the datagram as a loan of the RX data room whenever the payload
  // sits in one mbuf; reassembled fragments fall back to a copy. The
  // queue's budget charges loans at data-room granularity (UdpDatagram::
  // charge), so a small-datagram flood throttles its own socket instead
  // of pinning the shared pool.
  if (const auto slice = rx_slice_of(body); slice.has_value()) {
    pool_->retain(slice->m);
    d.mbuf = slice->m;
    d.off = slice->off;
    d.len = slice->len;
    rx_stats_.loaned_segs++;
    rx_stats_.loaned_bytes += slice->len;
  } else {
    d.data.assign(body.begin(), body.end());
    rx_stats_.fallback_bytes += body.size();
  }
  it->second->deliver(std::move(d));
}

void FfStack::tcp_input_seg(const Ipv4Header& ih,
                            std::span<const std::byte> l4) {
  const auto th = TcpHeader::parse(l4);
  if (!th) return;
  // Same verdict contract as udp_input: Bad is fatal, Good elides the
  // software verification walk, absent falls back to software.
  if ((rx_cur_ol_ & updk::kRxCsumL4Bad) != 0) {
    stats_.csum_errors++;
    return;
  }
  if ((rx_cur_ol_ & updk::kRxCsumL4Good) == 0) {
    std::uint32_t sum = checksum_pseudo(
        ih.src, ih.dst, kIpProtoTcp, static_cast<std::uint16_t>(l4.size()));
    sum = checksum_partial(l4, sum);
    if (checksum_finish(sum) != 0) {
      stats_.csum_errors++;
      return;
    }
  }
  const TcpOptions opts =
      TcpOptions::parse(l4.subspan(TcpHeader::kSize,
                                   th->header_len() - TcpHeader::kSize));
  const auto payload = l4.subspan(th->header_len());

  const FourTuple tuple{ih.dst, th->dst_port, ih.src, th->src_port};
  if (const auto it = tcp_pcbs_.find(tuple); it != tcp_pcbs_.end()) {
    it->second->input(*th, opts, payload);
    timer_sync(it->second.get());
    return;
  }
  if (const auto lit = tcp_listeners_.find(th->dst_port);
      lit != tcp_listeners_.end() &&
      (lit->second->tuple().local_ip == ih.dst ||
       lit->second->tuple().local_ip == Ipv4Addr{})) {
    lit->second->pending_remote_ip = ih.src;
    lit->second->input(*th, opts, payload);
    // A spawned child armed its SYN-ACK retransmit inside input_listen:
    // register the fresh PCB's deadline before the loop sleeps on it.
    if (const auto cit = tcp_pcbs_.find(tuple); cit != tcp_pcbs_.end()) {
      timer_sync(cit->second.get());
    }
    return;
  }
  if (!th->has(tcpflag::kRst)) send_tcp_rst(ih, *th, payload.size());
}

void FfStack::send_tcp_rst(const Ipv4Header& ih, const TcpHeader& th,
                           std::size_t payload_len) {
  TcpHeader rst;
  rst.src_port = th.dst_port;
  rst.dst_port = th.src_port;
  if (th.has(tcpflag::kAck)) {
    rst.seq = th.ack;
    rst.flags = tcpflag::kRst;
  } else {
    rst.seq = 0;
    rst.ack = th.seq + static_cast<std::uint32_t>(payload_len) +
              (th.has(tcpflag::kSyn) ? 1 : 0) +
              (th.has(tcpflag::kFin) ? 1 : 0);
    rst.flags = tcpflag::kRst | tcpflag::kAck;
  }
  std::byte seg[TcpHeader::kSize];
  rst.serialize(seg);
  std::uint32_t sum =
      checksum_pseudo(ih.dst, ih.src, kIpProtoTcp, TcpHeader::kSize);
  sum = checksum_partial(seg, sum);
  put_be16(seg + 16, checksum_finish(sum));
  send_ipv4(ih.src, kIpProtoTcp, seg);
  stats_.tcp_rst_out++;
}

// ===========================================================================
// Output path
// ===========================================================================

Ipv4Addr FfStack::next_hop_for(Ipv4Addr dst) const {
  if (dst.same_subnet(cfg_.netif.ip, cfg_.netif.netmask) ||
      cfg_.netif.gateway == Ipv4Addr{}) {
    return dst;
  }
  return cfg_.netif.gateway;
}

bool FfStack::send_ipv4(Ipv4Addr dst, std::uint8_t proto,
                        std::span<const std::byte> l4, std::uint8_t cls,
                        const TxOffloadMeta* ol, int tenant) {
  const std::uint16_t id = ip_id_++;
  const auto plan = plan_fragments(l4.size(), cfg_.netif.mtu,
                                   Ipv4Header::kSize);
  // Offload metadata only rides unfragmented packets: the device checksums
  // whole L4 messages, never fragments (callers guarantee this by checking
  // the MTU before seeding, so a fragmented ol != nullptr is a logic bug
  // we neutralize rather than ship a bad frame).
  if (plan.size() != 1) ol = nullptr;
  const Ipv4Addr hop = next_hop_for(dst);
  bool ok = true;
  for (const FragmentPlan& f : plan) {
    std::vector<std::byte> pkt(Ipv4Header::kSize + f.payload_len);
    Ipv4Header h;
    h.total_len = static_cast<std::uint16_t>(pkt.size());
    h.id = id;
    h.proto = proto;
    h.src = cfg_.netif.ip;
    h.dst = dst;
    h.flags_frag = static_cast<std::uint16_t>(f.payload_off / 8);
    if (f.more_fragments) h.flags_frag |= Ipv4Header::kFlagMF;
    if (plan.size() == 1 && proto == kIpProtoTcp) {
      h.flags_frag |= Ipv4Header::kFlagDF;
    }
    h.serialize(pkt);
    std::copy_n(l4.begin() + f.payload_off, f.payload_len,
                pkt.begin() + Ipv4Header::kSize);
    ok &= transmit_ip_packet(pkt, hop, cls, ol, tenant);
  }
  return ok;
}

bool FfStack::transmit_ip_packet(std::span<const std::byte> ip_packet,
                                 Ipv4Addr next_hop, std::uint8_t cls,
                                 const TxOffloadMeta* ol, int tenant) {
  // Copy-path packets (ICMP, RST, fragmented/ARP-pending UDP) land in one
  // owned mbuf and join the same staged chain pipeline as gathered frames.
  updk::Mbuf* m = pool_->alloc();
  if (m == nullptr) return false;
  try {
    m->append(static_cast<std::uint32_t>(ip_packet.size()))
        .write(0, ip_packet);
  } catch (const cheri::CapFault&) {
    pool_->free(m);
    return false;
  }
  if (ol != nullptr) {
    m->ol_flags = ol->ol_flags;
    m->l2_len = EtherHeader::kSize;
    m->l3_len = Ipv4Header::kSize;
    m->l4_len = ol->l4_len;
  }
  return transmit_ip_chain(m, next_hop, cls, tenant);
}

bool FfStack::transmit_ip_chain(updk::Mbuf* head, Ipv4Addr next_hop,
                                std::uint8_t cls, int tenant) {
  const sim::Ns now = clock_->now();
  const auto mac = arp_.lookup(next_hop, now);
  if (!mac) {
    if (arp_.should_request(next_hop, now)) {
      send_arp(ArpHeader::kOpRequest, nic::MacAddr{}, next_hop);
    }
    // Park until the hop resolves. A CHAIN may reference live send-queue
    // memory (ring spans stay valid only until the next ring write), so a
    // parked frame is first linearized into one owned mbuf; a frame that
    // is already a single direct buffer parks as-is.
    updk::Mbuf* flat = head;
    if (head->next != nullptr || head->indirect) {
      flat = linearize_chain(head);
      pool_->free_chain(head);
      if (flat == nullptr) return false;
    }
    // A parked frame pins a pool buffer against the OWNER's budget: an
    // over-budget tenant's frame drops here (its protocol retransmits or
    // reports the loss) while neighbours' frames keep parking.
    if (tenant != 0 && !tenants_.charge_parked(tenant)) {
      pool_->free(flat);
      return false;
    }
    if (!arp_.park(next_hop, flat, now)) {  // hop queue capped: counted drop
      if (tenant != 0) tenants_.credit_parked(tenant);
      pool_->free(flat);
      return false;
    }
    if (tenant != 0) parked_tenant_.emplace(flat, tenant);
    arp_timer_sync();  // a fresh hop's pending TTL enters the wheel
    return true;
  }
  if (!prepend_ether(head, *mac, kEtherTypeIpv4)) return false;
  stage_frame(head, cls);
  return true;
}

bool FfStack::prepend_ether(updk::Mbuf* head, const nic::MacAddr& dst,
                            std::uint16_t ethertype) {
  EtherHeader eh;
  eh.dst = dst;
  eh.src = dev_->mac();
  eh.ethertype = ethertype;
  std::byte ehb[EtherHeader::kSize];
  eh.serialize(ehb);
  try {
    head->prepend(EtherHeader::kSize).write(0, ehb);
  } catch (const cheri::CapFault&) {
    pool_->free_chain(head);
    return false;
  }
  return true;
}

updk::Mbuf* FfStack::linearize_chain(updk::Mbuf* head) {
  updk::Mbuf* flat = pool_->alloc();
  if (flat == nullptr) return nullptr;
  std::byte scratch[512];
  try {
    for (const updk::Mbuf* s = head; s != nullptr; s = s->next) {
      if (s->data_len == 0) continue;
      machine::cap_copy(flat->append(s->data_len), 0,
                        s->room.window(s->data_off, s->data_len), 0,
                        s->data_len, scratch);
    }
  } catch (const cheri::CapFault&) {
    pool_->free(flat);
    return nullptr;
  }
  // A parked offload frame keeps its checksum/TSO request: the flattening
  // changed the segment layout, not the frame the metadata describes.
  flat->ol_flags = head->ol_flags;
  flat->l2_len = head->l2_len;
  flat->l3_len = head->l3_len;
  flat->l4_len = head->l4_len;
  flat->tso_segsz = head->tso_segsz;
  // Counted apart from emit_payload_reads: this copy serves ARP parking
  // (headers included), not segment emission — the gated metric stays a
  // pure payload-re-read census.
  tx_stats_.park_linearized_bytes += flat->data_len;
  return flat;
}

void FfStack::stage_frame(updk::Mbuf* head, std::uint8_t cls) {
  std::uint32_t bytes = 0;
  for (const updk::Mbuf* s = head; s != nullptr; s = s->next) {
    bytes += s->data_len;
  }
  if (qos_.enqueue(cls, head, bytes)) return;
  flush_tx();
  if (qos_.enqueue(cls, head, bytes)) return;
  // The class queue is still full after a flush (token-paced class, or the
  // device made no progress at all): drop the class's OLDEST staged frame
  // rather than overflow — a genuine loss, counted apart from deferrals,
  // and confined to the offending class.
  if (updk::Mbuf* oldest = qos_.evict_oldest(cls)) {
    pool_->free_chain(oldest);
    stats_.tx_stage_drops++;
    if (qos_.enqueue(cls, head, bytes)) return;
  }
  pool_->free_chain(head);  // unreachable unless queue_cap is pathological
  stats_.tx_stage_drops++;
}

std::size_t FfStack::flush_tx() {
  // DRR over the class queues fills each driver burst (highest class first
  // within a round, token buckets honored); bursts repeat while they make
  // progress, so a small TX ring still absorbs a large stage in a few
  // calls. Frames the ring cannot take THIS flush are handed back to the
  // scheduler with their tokens/deficit refunded (backpressure, not loss)
  // and retry at the next flush point; token-paced frames stay queued
  // until virtual time refills their bucket (next_deadline wakes the
  // arbiter at that instant).
  std::size_t total = 0;
  const sim::Ns now = clock_->now();
  while (qos_.staged() > 0) {
    std::array<QosScheduler::Picked, kTxStageCap> picks;
    const std::size_t k = qos_.select(now, picks);
    if (k == 0) break;  // everything left is waiting on a token bucket
    std::array<updk::Mbuf*, kTxStageCap> burst;
    for (std::size_t i = 0; i < k; ++i) burst[i] = picks[i].chain;
    std::size_t off = 0;
    while (off < k) {
      const std::size_t sent = dev_->tx_burst({burst.data() + off, k - off});
      if (sent == 0) break;
      off += sent;
    }
    total += off;
    if (off < k) {
      stats_.tx_stage_deferred += k - off;
      qos_.unselect(std::span<const QosScheduler::Picked>{picks.data() + off,
                                                          k - off});
      break;
    }
  }
  stats_.tx_frames += total;
  return total;
}

bool FfStack::transmit_frame(const nic::MacAddr& dst, std::uint16_t ethertype,
                             std::span<const std::byte> payload,
                             std::uint8_t cls) {
  updk::Mbuf* m = pool_->alloc();
  if (m == nullptr) return false;
  try {
    m->append(static_cast<std::uint32_t>(payload.size())).write(0, payload);
  } catch (const cheri::CapFault&) {
    pool_->free(m);
    return false;
  }
  if (!prepend_ether(m, dst, ethertype)) return false;
  stage_frame(m, cls);
  return true;
}

void FfStack::send_arp(std::uint16_t oper, const nic::MacAddr& tha,
                       Ipv4Addr tpa) {
  ArpHeader ah;
  ah.oper = oper;
  ah.sha = dev_->mac();
  ah.spa = cfg_.netif.ip;
  ah.tha = tha;
  ah.tpa = tpa;
  std::byte buf[ArpHeader::kSize];
  ah.serialize(buf);
  const nic::MacAddr dst =
      oper == ArpHeader::kOpRequest ? nic::MacAddr::broadcast() : tha;
  transmit_frame(dst, kEtherTypeArp, buf);
}

// ===========================================================================
// TcpEnv
// ===========================================================================

bool FfStack::tcp_emit(TcpPcb& pcb, const TcpHeader& hdr,
                       const TcpOptions& opts, std::size_t payload_off,
                       std::size_t payload_len) {
  // Headers serialize into a small stack scratch; PAYLOAD never does — it
  // leaves as indirect mbufs chained over the live send-queue stores.
  std::byte hdrb[TcpHeader::kSize + 44];
  TcpHeader h = hdr;
  h.serialize({hdrb, TcpHeader::kSize});
  const std::size_t opt_len = opts.serialize(
      std::span<std::byte>{hdrb + TcpHeader::kSize, 44});
  const std::size_t hlen = TcpHeader::kSize + opt_len;
  hdrb[12] = static_cast<std::byte>((hlen / 4) << 4);
  const std::size_t total = hlen + payload_len;

  // A segment larger than one MTU leaves as a TSO super-segment when the
  // queue negotiated slicing (the device restores per-MSS wire frames with
  // per-slice header fixups); tso_max_segs is pinned to 1 otherwise, so a
  // non-TSO stack only ever sees this for over-MTU peer configurations.
  const bool tso_frame =
      tso_ && payload_len > 0 && Ipv4Header::kSize + total > cfg_.netif.mtu;

  // Decompose the payload over the live chain stores. A range more
  // fragmented than the piece budget linearizes instead (one bounded copy
  // beats a 9+-descriptor chain); super-segments get the larger TSO budget.
  TxPiece pieces[kMaxTsoPieces];
  std::size_t npieces = 0;
  bool linearize = false;
  if (payload_len > 0) {
    npieces = pcb.gather_send(
        payload_off, payload_len,
        {pieces, tso_frame ? kMaxTsoPieces : kMaxTxPieces});
    linearize = npieces == 0;
  }

  if ((!tso_frame && Ipv4Header::kSize + total > cfg_.netif.mtu) ||
      (tso_frame && linearize)) {
    // Over-MTU segment without (usable) TSO: the legacy linearizing path
    // still fragments correctly, software-checksummed — IP fragments carry
    // partial L4 messages the device cannot checksum.
    std::vector<std::byte> seg(total);
    std::copy_n(hdrb, hlen, seg.begin());
    if (payload_len > 0) {
      pcb.peek_send(payload_off,
                    std::span<std::byte>{seg.data() + hlen, payload_len});
      tx_stats_.emit_payload_reads += payload_len;
      tx_stats_.stack_checksum_bytes += payload_len;
    }
    std::uint32_t fsum = checksum_pseudo(pcb.tuple().local_ip,
                                         pcb.tuple().remote_ip, kIpProtoTcp,
                                         static_cast<std::uint16_t>(total));
    fsum = checksum_partial(seg, fsum);
    put_be16(seg.data() + 16, checksum_finish(fsum));
    return send_ipv4(pcb.tuple().remote_ip, kIpProtoTcp, seg, pcb.tclass(),
                     nullptr, pcb.tenant());
  }

  std::byte lin[kFrameScratch];
  if (tx_tcp_csum_) {
    // Hardware checksum insertion: the composed-checksum walk disappears
    // entirely. The checksum field carries the folded, NON-inverted
    // pseudo-header sum as the device's seed — with the length term for
    // single-frame insertion, WITHOUT it for TSO (each slice's length
    // differs; the device adds it per frame, the DPDK/igb convention).
    const std::uint32_t ps = checksum_pseudo(
        pcb.tuple().local_ip, pcb.tuple().remote_ip, kIpProtoTcp,
        tso_frame ? 0 : static_cast<std::uint16_t>(total));
    put_be16(hdrb + 16, checksum_fold16(ps));
    if (linearize && payload_len > 0) {
      pcb.peek_send(payload_off, std::span<std::byte>{lin, payload_len});
      tx_stats_.emit_payload_reads += payload_len;
    }
  } else {
    // Software path. Checksum: pseudo-header + serialized headers + payload
    // COMPOSED from the chain's cached partials — checksum_combine folds
    // each slice sum in at its packet offset, O(#slices) with zero payload
    // re-reads on the aligned path (hlen is a multiple of 4, so payload
    // parity == rel&1).
    std::uint32_t sum = checksum_pseudo(pcb.tuple().local_ip,
                                        pcb.tuple().remote_ip, kIpProtoTcp,
                                        static_cast<std::uint16_t>(total));
    sum = checksum_partial(std::span<const std::byte>{hdrb, hlen}, sum);
    if (linearize) {
      pcb.peek_send(payload_off, std::span<std::byte>{lin, payload_len});
      tx_stats_.emit_payload_reads += payload_len;
      tx_stats_.stack_checksum_bytes += payload_len;
      sum = checksum_partial_at({lin, payload_len}, 0, sum);
    } else {
      std::size_t rel = 0;
      for (std::size_t i = 0; i < npieces; ++i) {
        const TxPiece& p = pieces[i];
        if (p.csum_ok) {
          sum = checksum_combine(sum, p.csum, rel);
        } else {
          // No cached sum covers this exact range (a window-split or
          // head-trimmed slice): one capability walk, counted.
          const std::uint32_t part =
              p.m != nullptr ? checksum_cap_partial(p.m->room, p.off, p.len)
                             : checksum_cap_partial(p.view, 0, p.len);
          sum = checksum_combine(sum, part, rel);
          tx_stats_.emit_payload_reads += p.len;
          tx_stats_.stack_checksum_bytes += p.len;
        }
        rel += p.len;
      }
    }
    put_be16(hdrb + 16, checksum_finish(sum));
  }

  // Header mbuf: TCP header/options at data start, headroom kept for the
  // IP and Ethernet prepends (DPDK-style); payload chained behind it.
  updk::Mbuf* head = pool_->alloc();
  if (head == nullptr) return false;
  try {
    head->append(static_cast<std::uint32_t>(hlen))
        .write(0, std::span<const std::byte>{hdrb, hlen});
    if (linearize && payload_len > 0) {
      head->append(static_cast<std::uint32_t>(payload_len))
          .write(0, std::span<const std::byte>{lin, payload_len});
    } else {
      for (std::size_t i = 0; i < npieces; ++i) {
        const TxPiece& p = pieces[i];
        updk::Mbuf* seg =
            p.m != nullptr ? pool_->alloc_indirect(p.m, p.off, p.len)
                           : pool_->alloc_indirect_view(p.view);
        if (seg == nullptr) {
          // Indirect headers exhausted mid-chain: copy the remaining
          // extents into one direct segment so frame byte order holds.
          updk::Mbuf* copyseg = pool_->alloc();
          if (copyseg == nullptr) {
            pool_->free_chain(head);
            return false;
          }
          std::byte scratch[512];
          for (; i < npieces; ++i) {
            const TxPiece& q = pieces[i];
            const machine::CapView src =
                q.m != nullptr ? q.m->room.window(q.off, q.len) : q.view;
            machine::cap_copy(copyseg->append(q.len), 0, src, 0, q.len,
                              scratch);
            tx_stats_.emit_payload_reads += q.len;
          }
          head->chain(copyseg);
          break;
        }
        head->chain(seg);
      }
    }
  } catch (const cheri::CapFault&) {
    pool_->free_chain(head);
    return false;
  }

  // IPv4 header prepended into the headroom.
  Ipv4Header ih;
  ih.total_len = static_cast<std::uint16_t>(Ipv4Header::kSize + total);
  ih.id = ip_id_++;
  ih.flags_frag = Ipv4Header::kFlagDF;
  ih.proto = kIpProtoTcp;
  ih.src = cfg_.netif.ip;
  ih.dst = pcb.tuple().remote_ip;
  std::byte ihb[Ipv4Header::kSize];
  ih.serialize(ihb);
  try {
    head->prepend(Ipv4Header::kSize).write(0, ihb);
  } catch (const cheri::CapFault&) {
    pool_->free_chain(head);
    return false;
  }
  if (tx_tcp_csum_) {
    // Offload request on the chain head (driver ABI, updk/mbuf.hpp): the
    // PMD translates this to IC/css/cso descriptors (single frame) or a
    // context descriptor + TSE tagging (super-segment).
    head->ol_flags = updk::kTxOffloadTcpCsum;
    if (tso_frame) head->ol_flags |= updk::kTxOffloadTso;
    head->l2_len = EtherHeader::kSize;
    head->l3_len = Ipv4Header::kSize;
    head->l4_len = static_cast<std::uint8_t>(hlen);
    head->tso_segsz =
        tso_frame ? static_cast<std::uint16_t>(pcb.mss_eff()) : 0;
  }
  return transmit_ip_chain(head, next_hop_for(pcb.tuple().remote_ip),
                           pcb.tclass(), pcb.tenant());
}

TcpPcb* FfStack::tcp_spawn_child(TcpPcb& listener, const FourTuple& tuple) {
  if (tcp_pcbs_.contains(tuple)) return nullptr;
  auto pcb = std::unique_ptr<TcpPcb>(make_pcb());
  TcpPcb* raw = pcb.get();
  raw->set_tclass(listener.tclass());  // children ride the listener's class
  raw->set_tenant(listener.tenant());  // ...and bill the listener's tenant
  tcp_pcbs_.emplace(tuple, std::move(pcb));
  port_ref(tuple.local_port);
  return raw;
}

void FfStack::tcp_accept_ready(TcpPcb& listener, TcpPcb& child) {
  listener.accept_queue.push_back(&child);
  listener.accept_ready_total++;
}

TcpPcb* FfStack::make_pcb() {
  // The send side interleaves the copy ring with retained zc mbuf slices
  // (TxChain) — ff_zc_send payload is never byte-copied; the receive side
  // is a loan chain over RX mbufs. With TCP checksum insertion negotiated
  // the chain skips admission-time partial sums (the device prices the
  // wire checksum), so no TX byte is ever software-summed.
  TxChain snd(SockBuf(heap_->alloc_view(cfg_.tcp.sndbuf_bytes)), pool_,
              &tx_stats_, /*cache_csums=*/!tx_tcp_csum_);
  RxChain rcv(cfg_.tcp.rcvbuf_bytes, pool_, &rx_stats_);
  return new TcpPcb(this, cfg_.tcp, std::move(snd), std::move(rcv));
}

std::uint32_t FfStack::new_iss() {
  iss_state_ = iss_state_ * 6364136223846793005ull + 1442695040888963407ull;
  return static_cast<std::uint32_t>(iss_state_ >> 32);
}

void FfStack::port_ref(std::uint16_t p) { tcp_ports_[p]++; }

void FfStack::port_unref(std::uint16_t p) {
  const auto it = tcp_ports_.find(p);
  if (it == tcp_ports_.end()) return;
  if (--it->second == 0) tcp_ports_.erase(it);
}

std::uint16_t FfStack::alloc_ephemeral_port(Ipv4Addr peer_ip,
                                            std::uint16_t peer_port) {
  // O(1) per candidate: the used-port set (tcp_ports_, maintained on PCB
  // insert/erase) replaces the old scan over every live PCB — allocation
  // stays constant-time with thousands of connections.
  //
  // On a multi-queue port (stack sharding) a connect()-time allocation
  // additionally requires the peer's replies to RSS-hash back to THIS
  // shard's queue: with N queues, 1-in-N candidates qualify on average, so
  // the steered scan stays O(N) expected per allocation.
  const auto steering = dev_->rx_steering();
  const bool steered = steering.queue_count > 1 && peer_port != 0;
  for (int tries = 0; tries < 16384; ++tries) {
    const std::uint16_t p = next_ephemeral_;
    next_ephemeral_ =
        next_ephemeral_ >= 65535 ? 49152 : next_ephemeral_ + 1;
    if (!udp_binds_.contains(p) && !tcp_listeners_.contains(p) &&
        !tcp_ports_.contains(p)) {
      if (steered &&
          dev_->rx_queue_of(peer_ip.value, peer_port, cfg_.netif.ip.value, p,
                            6) != steering.queue_id) {
        continue;
      }
      return p;
    }
  }
  return 0;
}

// ===========================================================================
// Socket operations
// ===========================================================================

int FfStack::sock_socket(SockKind kind) {
  Socket* s = socks_.create(kind);
  if (s == nullptr) return -EMFILE;
  if (s->kind == SockKind::kUdp) s->udp->set_pool(pool_);
  return s->fd;
}

int FfStack::sock_bind(int fd, Ipv4Addr ip, std::uint16_t port) {
  Socket* s = socks_.get(fd);
  if (s == nullptr) return -EBADF;
  if (s->bound) return -EINVAL;
  s->local_ip = ip == Ipv4Addr{} ? cfg_.netif.ip : ip;
  s->local_port = port != 0 ? port : alloc_ephemeral_port();
  if (s->local_port == 0) return -EADDRINUSE;
  s->bound = true;
  if (s->kind == SockKind::kUdp) {
    if (udp_binds_.contains(s->local_port)) return -EADDRINUSE;
    s->udp->local_ip = s->local_ip;
    s->udp->local_port = s->local_port;
    udp_binds_[s->local_port] = s->udp.get();
    // Datagram flows have no SYN to steer by: pin the bound port to this
    // shard's queue so its datagrams never land on a sibling.
    dev_->steer_local_port(17, s->local_port);
  }
  return 0;
}

int FfStack::sock_listen(int fd, int backlog) {
  Socket* s = socks_.get(fd);
  if (s == nullptr || s->kind != SockKind::kTcp) return -EBADF;
  if (!s->bound) return -EINVAL;
  if (tcp_listeners_.contains(s->local_port)) return -EADDRINUSE;
  auto pcb = std::make_unique<TcpPcb>(this, cfg_.tcp, TxChain{}, RxChain{});
  pcb->open_listen(s->local_ip, s->local_port);
  pcb->backlog = std::max(backlog, 1);
  pcb->set_tenant(s->tenant);  // children spawned here bill this tenant
  s->pcb = pcb.get();
  s->listening = true;
  tcp_listeners_.emplace(s->local_port, std::move(pcb));
  // Pin inbound SYNs (and everything after) for this port to our shard's
  // RX queue: accepted children inherit the listener's shard, so a
  // connection's lifetime is single-shard. No-op on single-queue devices.
  dev_->steer_local_port(6, s->local_port);
  return 0;
}

int FfStack::sock_accept(int fd, FourTuple* peer_out) {
  Socket* s = socks_.get(fd);
  if (s == nullptr || !s->listening || s->pcb == nullptr) return -EBADF;
  auto& q = s->pcb->accept_queue;
  while (!q.empty()) {
    TcpPcb* child = q.front();
    q.pop_front();
    if (child->closed()) {  // died (reset) before accept
      detached_.insert(child);
      continue;
    }
    // The child bills the listener's tenant; past the tenant's socket cap
    // the connection aborts HERE (the offender's accept fails) rather than
    // occupying a table slot its neighbours could use.
    if (!tenants_.charge_socket(child->tenant())) {
      child->abort(ECONNABORTED);
      timer_sync(child);
      detached_.insert(child);
      return -EMFILE;
    }
    Socket* cs = socks_.create(SockKind::kTcp);
    if (cs == nullptr) {
      tenants_.credit_socket(child->tenant());
      child->abort(ECONNABORTED);
      timer_sync(child);
      detached_.insert(child);
      return -EMFILE;
    }
    cs->pcb = child;
    cs->tclass = child->tclass();  // inherited from the listener at spawn
    cs->tenant = child->tenant();
    cs->bound = true;
    cs->local_ip = child->tuple().local_ip;
    cs->local_port = child->tuple().local_port;
    if (peer_out != nullptr) *peer_out = child->tuple();
    return cs->fd;
  }
  return -EAGAIN;
}

int FfStack::sock_connect(int fd, Ipv4Addr ip, std::uint16_t port) {
  Socket* s = socks_.get(fd);
  if (s == nullptr || s->kind != SockKind::kTcp) return -EBADF;
  if (s->pcb != nullptr) return -EISCONN;
  if (!s->bound) {
    // Peer-aware ephemeral bind: the candidate port must hash the reply
    // direction onto this shard's RX queue (no-op on single-queue ports).
    s->local_ip = cfg_.netif.ip;
    s->local_port = alloc_ephemeral_port(ip, port);
    if (s->local_port == 0) return -EADDRINUSE;
    s->bound = true;
  }
  const FourTuple tuple{s->local_ip, s->local_port, ip, port};
  if (tcp_pcbs_.contains(tuple)) return -EADDRINUSE;
  auto pcb = std::unique_ptr<TcpPcb>(make_pcb());
  TcpPcb* raw = pcb.get();
  tcp_pcbs_.emplace(tuple, std::move(pcb));
  port_ref(tuple.local_port);
  s->pcb = raw;
  raw->set_tenant(s->tenant);  // protocol emissions (SYN parks) bill us
  raw->open_connect(tuple, new_iss());
  timer_sync(raw);  // the SYN's retransmit deadline enters the wheel
  sync_flush();  // the SYN leaves before the call returns
  return -EINPROGRESS;
}

int FfStack::sock_set_class(int fd, std::uint32_t cls) {
  Socket* s = socks_.get(fd);
  if (s == nullptr || s->kind == SockKind::kEpoll) return -EBADF;
  if (cls >= kQosClasses) return -EINVAL;
  s->tclass = static_cast<std::uint8_t>(cls);
  // TCP: the PCB carries the authoritative class so pure-protocol
  // emissions (ACKs, retransmits) classify too. On a listener this is the
  // class future accepted children inherit; already-queued children keep
  // the class they spawned with.
  if (s->kind == SockKind::kTcp && s->pcb != nullptr) {
    s->pcb->set_tclass(static_cast<std::uint8_t>(cls));
  }
  return 0;
}

std::int64_t FfStack::sock_write(int fd, const machine::CapView& buf,
                                 std::size_t n) {
  // v1 thin wrapper: a one-element batch through the v2 machinery.
  api_.v1_calls++;
  const FfIovec one{buf, n};
  return writev_impl(fd, {&one, 1});
}

std::int64_t FfStack::sock_writev(int fd, std::span<const FfIovec> iov) {
  api_.batch_calls++;
  api_.batched_items += iov.size();
  return writev_impl(fd, iov);
}

std::int64_t FfStack::writev_impl(int fd, std::span<const FfIovec> iov,
                                  bool swept) {
  Socket* s = socks_.get(fd);
  if (s == nullptr || s->kind != SockKind::kTcp || s->pcb == nullptr) {
    return -EBADF;
  }
  TcpPcb* pcb = s->pcb;
  if (pcb->error() != 0) return -pcb->error();
  if (!pcb->connected()) {
    return pcb->state() == TcpState::kSynSent ? -EAGAIN : -ENOTCONN;
  }
  if (!swept) {  // ff_uring drains sweep the whole pending window instead
    ff_sweep_iovecs(iov, cheri::Access::kLoad);
    api_.validation_sweeps++;
  }
  bool any_bytes = false;
  for (const FfIovec& e : iov) any_bytes |= e.len != 0;
  if (!any_bytes) return 0;  // empty batch / all zero-length: no-op
  // Staged frames may hold indirect references into send-ring memory:
  // flush them to the driver BEFORE this call writes into the ring, so a
  // span freed by an earlier ACK cannot be overwritten while a staged
  // frame still gathers from it. If this flow's class could not drain
  // (device wedged, or its token bucket is pacing it), admitting bytes
  // would break that lifetime contract — backpressure the caller instead.
  // Scoped to the flow's OWN class: frames staged by other classes gather
  // from other flows' memory, and a token-paced bulk backlog must not
  // starve a higher class's writes at the API boundary.
  flush_tx();
  if (qos_.staged(pcb->tclass()) != 0) return -EAGAIN;
  const std::size_t queued = pcb->app_writev(iov);
  if (queued == 0) return -EAGAIN;
  // One TCP push services the whole batch.
  if (cfg_.inline_tcp_output) {
    pcb->output();
  } else {
    pending_output_.insert(pcb);
  }
  timer_sync(pcb);
  sync_flush();  // synchronous progress: the batch's segments leave now
  return static_cast<std::int64_t>(queued);
}

std::int64_t FfStack::sock_read(int fd, const machine::CapView& buf,
                                std::size_t n) {
  api_.v1_calls++;
  const FfIovec one{buf, n};
  return readv_impl(fd, {&one, 1});
}

std::int64_t FfStack::sock_readv(int fd, std::span<const FfIovec> iov) {
  api_.batch_calls++;
  api_.batched_items += iov.size();
  return readv_impl(fd, iov);
}

std::int64_t FfStack::readv_impl(int fd, std::span<const FfIovec> iov) {
  Socket* s = socks_.get(fd);
  if (s == nullptr || s->kind != SockKind::kTcp || s->pcb == nullptr) {
    return -EBADF;
  }
  TcpPcb* pcb = s->pcb;
  ff_sweep_iovecs(iov, cheri::Access::kStore);
  api_.validation_sweeps++;
  std::size_t total = 0;
  bool any_bytes = false;
  for (const FfIovec& e : iov) {
    if (e.len == 0) continue;
    any_bytes = true;
    const std::size_t got = pcb->app_read(e.buf, e.len);
    total += got;
    if (got < e.len) break;  // receive buffer drained mid-batch
  }
  if (total > 0) {
    if (cfg_.inline_tcp_output) pcb->output();
    timer_sync(pcb);
    // app_read may have emitted a window-reopening ACK even in deferred
    // mode: it leaves before the call returns.
    flush_tx();
    return static_cast<std::int64_t>(total);
  }
  if (!any_bytes) return 0;
  if (pcb->eof()) return 0;
  if (pcb->error() != 0) return -pcb->error();
  return -EAGAIN;
}

std::int64_t FfStack::udp_emit_dgram(Socket* s, const machine::CapView& buf,
                                     std::size_t n, Ipv4Addr ip,
                                     std::uint16_t port) {
  std::vector<std::byte> seg(UdpHeader::kSize + n);
  UdpHeader uh;
  uh.src_port = s->local_port;
  uh.dst_port = port;
  uh.length = static_cast<std::uint16_t>(seg.size());
  uh.checksum = 0;
  uh.serialize(seg);
  buf.read(0, std::span<std::byte>{seg.data() + UdpHeader::kSize, n});
  tx_stats_.copied_bytes += n;  // app payload copied into the TX datagram
  if (tx_udp_csum_ && Ipv4Header::kSize + seg.size() <= cfg_.netif.mtu) {
    // Hardware insertion: seed the checksum field with the folded,
    // non-inverted pseudo sum and let the device walk the bytes. Only for
    // single-frame datagrams — fragments carry partial L4 messages.
    const std::uint32_t ps =
        checksum_pseudo(cfg_.netif.ip, ip, kIpProtoUdp, uh.length);
    put_be16(seg.data() + 6, checksum_fold16(ps));
    const TxOffloadMeta ol{updk::kTxOffloadUdpCsum, UdpHeader::kSize};
    send_ipv4(ip, kIpProtoUdp, seg, s->tclass, &ol, s->tenant);
    return static_cast<std::int64_t>(n);
  }
  std::uint32_t sum = checksum_pseudo(cfg_.netif.ip, ip, kIpProtoUdp,
                                      uh.length);
  sum = checksum_partial(seg, sum);
  tx_stats_.stack_checksum_bytes += n;
  std::uint16_t ck = checksum_finish(sum);
  if (ck == 0) ck = 0xFFFF;  // RFC 768: 0 means "no checksum"
  put_be16(seg.data() + 6, ck);
  send_ipv4(ip, kIpProtoUdp, seg, s->tclass, nullptr, s->tenant);
  return static_cast<std::int64_t>(n);
}

std::int64_t FfStack::sock_sendto(int fd, const machine::CapView& buf,
                                  std::size_t n, Ipv4Addr ip,
                                  std::uint16_t port) {
  Socket* s = socks_.get(fd);
  if (s == nullptr || s->kind != SockKind::kUdp) return -EBADF;
  if (!s->bound) {
    const int r = sock_bind(fd, Ipv4Addr{}, 0);
    if (r != 0) return r;
  }
  if (n > 65535 - UdpHeader::kSize) return -EMSGSIZE;
  api_.v1_calls++;
  const std::int64_t r = udp_emit_dgram(s, buf, n, ip, port);
  flush_tx();
  return r;
}

std::int64_t FfStack::sock_sendmsg_batch(int fd, std::span<FfMsg> msgs) {
  return sendmsg_impl(fd, msgs, false);
}

std::int64_t FfStack::sendmsg_impl(int fd, std::span<FfMsg> msgs,
                                   bool swept) {
  Socket* s = socks_.get(fd);
  if (s == nullptr || s->kind != SockKind::kUdp) return -EBADF;
  if (msgs.empty()) return 0;
  if (!s->bound) {
    const int r = sock_bind(fd, Ipv4Addr{}, 0);
    if (r != 0) return r;
  }
  // Atomic pre-flight: sizes and capabilities for the whole burst are
  // checked before the first datagram is emitted.
  for (const FfMsg& m : msgs) {
    if (m.len > 65535 - UdpHeader::kSize) return -EMSGSIZE;
  }
  if (!swept) {  // ff_uring drains sweep the whole pending window instead
    for (const FfMsg& m : msgs) {
      if (m.len == 0) continue;
      const cheri::Capability& c = m.buf.cap();
      c.check(cheri::Access::kLoad, c.address(), m.len);
    }
    api_.validation_sweeps++;
  }
  api_.batch_calls++;
  api_.batched_items += msgs.size();
  std::int64_t sent = 0;
  for (FfMsg& m : msgs) {
    if (m.len == 0) {  // legal and skipped, like zero-length iovecs
      m.result = 0;
      continue;
    }
    m.result = udp_emit_dgram(s, m.buf, m.len, m.addr.ip, m.addr.port);
    ++sent;
  }
  sync_flush();  // one driver burst covers the whole datagram batch
  return sent;
}

std::int64_t FfStack::sock_recvfrom(int fd, const machine::CapView& buf,
                                    std::size_t n, FourTuple* from_out) {
  Socket* s = socks_.get(fd);
  if (s == nullptr || s->kind != SockKind::kUdp) return -EBADF;
  if (!s->udp->readable()) return -EAGAIN;
  api_.v1_calls++;
  UdpDatagram d = s->udp->pop();
  const std::size_t copy = udp_copy_out(d, buf, n);
  rx_stats_.copied_bytes += copy;
  if (from_out != nullptr) {
    from_out->remote_ip = d.src;
    from_out->remote_port = d.src_port;
    from_out->local_ip = s->local_ip;
    from_out->local_port = s->local_port;
  }
  s->udp->release(std::move(d));
  return static_cast<std::int64_t>(copy);
}

bool FfStack::udp_burst_ready(const UdpPcb& u, std::size_t want,
                              std::uint64_t timeout_ns) const {
  if (!u.readable()) return false;
  if (timeout_ns == 0 || u.queued() >= want) return true;
  // recvmmsg-style coalescing: a short burst waits for the batch to fill,
  // but never longer than the timeout measured from the OLDEST queued
  // datagram's delivery — then the caller gets the short count.
  const sim::Ns waited = clock_->now() - u.front().arrived;
  return waited.count() >= 0 &&
         static_cast<std::uint64_t>(waited.count()) >= timeout_ns;
}

std::int64_t FfStack::sock_recvmsg_batch(int fd, std::span<FfMsg> msgs,
                                         const FfMsgBatchOpts& opts) {
  Socket* s = socks_.get(fd);
  if (s == nullptr || s->kind != SockKind::kUdp) return -EBADF;
  if (msgs.empty()) return 0;
  if (!udp_burst_ready(*s->udp, msgs.size(), opts.timeout_ns)) {
    return -EAGAIN;
  }
  sweep_msgs_store(msgs);
  api_.validation_sweeps++;
  api_.batch_calls++;
  api_.batched_items += msgs.size();
  std::int64_t filled = 0;
  for (FfMsg& m : msgs) {
    if (!s->udp->readable()) break;
    if (!m.buf.valid() && m.len == 0) {
      // v3 loan mode (ROADMAP "UDP RX loan bursts"): the EXPLICIT opt-in —
      // no destination buffer and no byte count (a default-constructed
      // FfMsg) — rides the zero-copy loan path: the datagram comes back
      // as an exactly-bounded read-only view of its RX data room with a
      // recycle token, not as a copy. (An invalid buf WITH a length is a
      // forged destination; the sweep above faulted it.)
      FfZcRxBuf z;
      const std::int64_t r = udp_pop_loan(s, z);
      if (r != 1) {
        // -EMSGSIZE / -ENOBUFS: the datagram stays queued; report it on
        // this entry and stop so the caller can react (copy it out /
        // recycle and retry) without losing burst ordering.
        m.result = r;
        if (filled == 0) return r;
        break;
      }
      m.buf = z.data;
      m.token = z.token;
      m.addr = z.from;
      m.result = static_cast<std::int64_t>(z.data.size());
      ++filled;
      continue;
    }
    m.token = 0;  // copy path: no loan to recycle
    if (m.len == 0) {  // legal and skipped — must NOT consume a datagram
      m.result = 0;
      continue;
    }
    UdpDatagram d = s->udp->pop();
    // Clamp to the destination capability as well: the pre-flight sweep
    // only probed the clamped range, so an unclamped copy could fault
    // mid-batch and destroy an already-popped datagram.
    const std::size_t copy = udp_copy_out(
        d, m.buf, std::min(m.len, static_cast<std::size_t>(m.buf.size())));
    rx_stats_.copied_bytes += copy;
    m.addr.ip = d.src;
    m.addr.port = d.src_port;
    m.result = static_cast<std::int64_t>(copy);
    s->udp->release(std::move(d));
    ++filled;
  }
  return filled;
}

// ===========================================================================
// Zero-copy TX: the application writes its payload through a bounded
// capability straight into the mbuf data room; send prepends the protocol
// headers in the mbuf headroom and hands the buffer to the driver — no copy
// through the socket layer (the fixed-cost memcpy v1 paid per datagram).
// ===========================================================================

int FfStack::sock_zc_alloc(std::size_t len, FfZcBuf* out) {
  if (out == nullptr || len == 0) return -EINVAL;
  // Every failure path invalidates the caller's handle: a stale token left
  // in a reused FfZcBuf after a failed re-alloc (the classic case: retrying
  // against an exhausted pool) must not keep granting the previous
  // reservation, or an abort-on-failure cleanup would release a buffer the
  // application still believes is in flight.
  out->token = 0;
  out->data = machine::CapView{};
  const std::size_t max_payload =
      cfg_.netif.mtu - Ipv4Header::kSize - UdpHeader::kSize;
  if (len > max_payload) return -EMSGSIZE;  // zc datagrams never fragment
  // Keep a driver reserve: TCP zc reservations can now sit in send queues
  // until cumulatively ACKed, and a sender allowed to pin the WHOLE pool
  // would starve the RX burst of the very buffers that receive its ACKs —
  // a self-inflicted deadlock no backoff could clear. -ENOBUFS is
  // retriable; the reserve (an eighth of the pool, capped at 64 rooms)
  // guarantees the datapath keeps moving.
  const std::uint32_t reserve = std::min<std::uint32_t>(64, pool_->size() / 8);
  if (pool_->available() <= reserve) return -ENOBUFS;
  // The reservation bills the draining ring's tenant BEFORE the room is
  // pinned: an over-budget tenant's alloc fails while the pool still has
  // rooms for its neighbours.
  const int tenant = active_tenant_;
  if (!tenants_.charge_zc_reservation(tenant)) return -ENOBUFS;
  updk::Mbuf* m = pool_->alloc();
  if (m == nullptr) {
    tenants_.credit_zc_reservation(tenant);
    return -ENOBUFS;
  }
  constexpr std::uint32_t kL2L3L4 =
      EtherHeader::kSize + Ipv4Header::kSize + UdpHeader::kSize;
  if (m->headroom() < kL2L3L4 || m->tailroom() < len) {
    tenants_.credit_zc_reservation(tenant);
    pool_->free(m);
    return -EMSGSIZE;
  }
  out->data = m->append(static_cast<std::uint32_t>(len));
  out->token = next_zc_token_++;
  zc_pending_.emplace(out->token, ZcTxRes{m, tenant});
  api_.zc_allocs++;
  return 0;
}

std::int64_t FfStack::sock_zc_send(int fd, FfZcBuf& zc, std::size_t len,
                                   Ipv4Addr ip, std::uint16_t port) {
  Socket* s = socks_.get(fd);
  if (s == nullptr ||
      (s->kind != SockKind::kUdp && s->kind != SockKind::kTcp)) {
    return -EBADF;
  }
  // Token lifecycle BEFORE anything else mutates: a replayed or forged
  // token must answer -EINVAL while every byte of protocol state — TCP
  // sequence space included — is still exactly as it was.
  const auto it = zc_pending_.find(zc.token);
  if (zc.token == 0 || it == zc_pending_.end()) {
    return -EINVAL;  // double submit / send after abort / forged token
  }
  // A tenant may only spend tokens IT reserved: a replayed neighbour token
  // (guessed or leaked) answers -EINVAL without touching the reservation.
  if (active_tenant_ != 0 && it->second.tenant != 0 &&
      it->second.tenant != active_tenant_) {
    return -EINVAL;
  }
  updk::Mbuf* m = it->second.m;
  if (len > m->data_len) return -EMSGSIZE;  // reservation kept for retry

  if (s->kind == SockKind::kTcp) {
    // TCP zc TX: the slice joins the send queue as a retained reference —
    // no byte store; tcp_output gathers segments straight from the data
    // room and cumulative ACK releases it (ip/port are ignored: the
    // connection addresses the peer).
    TcpPcb* pcb = s->pcb;
    if (pcb == nullptr || s->listening) return -EBADF;
    if (pcb->error() != 0) {
      // The connection is DEAD (reset / timed out): this payload can never
      // be submitted, so the reservation is consumed and the buffer freed —
      // a caller need not keep an abort path for a peer it can no longer
      // talk to (and a retry pipeline must not leak one room per attempt).
      const int err = pcb->error();
      pool_->free(m);
      tenants_.credit_zc_reservation(it->second.tenant);
      zc_pending_.erase(it);
      zc.token = 0;
      zc.data = machine::CapView{};
      return -err;
    }
    if (!pcb->connected()) {
      return pcb->state() == TcpState::kSynSent ? -EAGAIN : -ENOTCONN;
    }
    // The slice's checksum is priced HERE, once, as the bytes enter the
    // stack (one capability walk, no bounce buffer): emission — first
    // transmission and every retransmission — composes cached sums and
    // never reads the payload again. With checksum insertion negotiated
    // even this walk disappears: the device sums the bytes on the wire
    // path, and the stack never touches them at all.
    std::uint32_t csum = 0;
    if (!tx_tcp_csum_) {
      csum = checksum_cap_partial(m->room, m->data_off, len);
      tx_stats_.stack_checksum_bytes += len;
    }
    if (!pcb->app_zc_send(m, m->data_off, static_cast<std::uint32_t>(len),
                          csum)) {
      return -EAGAIN;  // send window full: reservation kept for retry
    }
    // Ownership moved to the send chain; the token is consumed.
    tenants_.credit_zc_reservation(it->second.tenant);
    zc_pending_.erase(it);
    zc.token = 0;
    zc.data = machine::CapView{};
    api_.zc_sends++;
    if (cfg_.inline_tcp_output) {
      pcb->output();
    } else {
      pending_output_.insert(pcb);
    }
    timer_sync(pcb);
    sync_flush();  // synchronous progress for the inline path
    return static_cast<std::int64_t>(len);
  }

  if (!s->bound) {
    const int r = sock_bind(fd, Ipv4Addr{}, 0);
    if (r != 0) return r;
  }
  // The token is consumed from here on, whatever the outcome — and so is
  // the data view: a consumed handle must not keep aliasing a data room the
  // pool may hand to another flow.
  tenants_.credit_zc_reservation(it->second.tenant);
  zc_pending_.erase(it);
  zc.token = 0;
  zc.data = machine::CapView{};

  const Ipv4Addr hop = next_hop_for(ip);
  const auto mac = arp_.lookup(hop, clock_->now());
  if (!mac) {
    // Unresolved next hop: fall back to the copying path so the payload can
    // park on the ARP pending queue (first packet to a fresh destination).
    const std::int64_t r = udp_emit_dgram(s, m->data(), len, ip, port);
    pool_->free(m);
    api_.zc_sends++;
    sync_flush();
    return r;
  }
  // Bytes enter the stack here: one capability walk prices the datagram's
  // checksum (no 512-byte bounce scratch), cached for zc_transmit. With
  // UDP checksum insertion negotiated the walk is skipped — zc_transmit
  // seeds the pseudo sum and the device does the pricing.
  std::uint32_t payload_sum = 0;
  if (!tx_udp_csum_) {
    payload_sum = checksum_cap_partial(m->room, m->data_off, len);
    tx_stats_.stack_checksum_bytes += len;
  }
  m->trim(static_cast<std::uint32_t>(m->data_len - len));
  if (!zc_transmit(m, len, payload_sum, s->local_port, ip, port, *mac,
                   s->tclass)) {
    pool_->free(m);
    return -ENOBUFS;
  }
  api_.zc_sends++;
  tx_stats_.zc_bytes += len;
  sync_flush();
  return static_cast<std::int64_t>(len);
}

bool FfStack::zc_transmit(updk::Mbuf* m, std::size_t len,
                          std::uint32_t payload_sum, std::uint16_t src_port,
                          Ipv4Addr dst, std::uint16_t dst_port,
                          const nic::MacAddr& dst_mac, std::uint8_t cls) {
  // UDP checksum over pseudo-header + header + payload: the payload's
  // cached partial (computed when the bytes entered) composes in at its
  // even offset — emission touches no payload byte. With insertion
  // negotiated the field carries the folded pseudo seed instead and the
  // device sums the frame (the datagram was bounded to one MTU at alloc
  // time, so no fragment can reach this path).
  const auto udp_len = static_cast<std::uint16_t>(UdpHeader::kSize + len);
  std::byte uh_bytes[UdpHeader::kSize];
  UdpHeader uh;
  uh.src_port = src_port;
  uh.dst_port = dst_port;
  uh.length = udp_len;
  uh.checksum = 0;
  uh.serialize(uh_bytes);
  if (tx_udp_csum_) {
    const std::uint32_t ps =
        checksum_pseudo(cfg_.netif.ip, dst, kIpProtoUdp, udp_len);
    put_be16(uh_bytes + 6, checksum_fold16(ps));
  } else {
    std::uint32_t sum = checksum_pseudo(cfg_.netif.ip, dst, kIpProtoUdp,
                                        udp_len);
    sum = checksum_partial(uh_bytes, sum);
    sum = checksum_combine(sum, payload_sum, UdpHeader::kSize);
    std::uint16_t ck = checksum_finish(sum);
    if (ck == 0) ck = 0xFFFF;  // RFC 768
    put_be16(uh_bytes + 6, ck);
  }
  m->prepend(UdpHeader::kSize).write(0, uh_bytes);
  if (tx_udp_csum_) {
    m->ol_flags = updk::kTxOffloadUdpCsum;
    m->l2_len = EtherHeader::kSize;
    m->l3_len = Ipv4Header::kSize;
    m->l4_len = UdpHeader::kSize;
  }

  Ipv4Header ih;
  ih.total_len = static_cast<std::uint16_t>(Ipv4Header::kSize + udp_len);
  ih.id = ip_id_++;
  ih.flags_frag = Ipv4Header::kFlagDF;  // bounded to one MTU at alloc time
  ih.proto = kIpProtoUdp;
  ih.src = cfg_.netif.ip;
  ih.dst = dst;
  std::byte ih_bytes[Ipv4Header::kSize];
  ih.serialize(ih_bytes);
  m->prepend(Ipv4Header::kSize).write(0, ih_bytes);

  EtherHeader eh;
  eh.dst = dst_mac;
  eh.src = dev_->mac();
  eh.ethertype = kEtherTypeIpv4;
  std::byte eh_bytes[EtherHeader::kSize];
  eh.serialize(eh_bytes);
  m->prepend(EtherHeader::kSize).write(0, eh_bytes);

  stage_frame(m, cls);
  return true;
}

int FfStack::sock_zc_abort(FfZcBuf& zc) {
  const auto it = zc_pending_.find(zc.token);
  if (zc.token == 0 || it == zc_pending_.end()) return -EINVAL;
  if (active_tenant_ != 0 && it->second.tenant != 0 &&
      it->second.tenant != active_tenant_) {
    return -EINVAL;  // a neighbour's token aborts nothing
  }
  pool_->free(it->second.m);
  tenants_.credit_zc_reservation(it->second.tenant);
  zc_pending_.erase(it);
  zc.token = 0;
  zc.data = machine::CapView{};  // drop the alias along with the token
  api_.zc_aborts++;
  return 0;
}

// ===========================================================================
// Zero-copy RX: pop queued mbuf slices as exactly-bounded read-only loans.
// The loan's data room returns to the pool ONLY through sock_zc_recycle —
// the token table and the per-socket window accounting both outlive the
// connection that produced the bytes.
// ===========================================================================

void FfStack::zc_issue_loan(FfZcRxBuf& o, const MbufSlice& slice,
                            std::size_t charge, const FfSockAddrIn& from,
                            TcpPcb* pcb, UdpPcb* udp, int tenant) {
  const std::uint64_t token = next_zc_rx_token_++;
  zc_rx_loans_.emplace(token,
                       ZcRxLoan{slice.m, pcb, udp,
                                static_cast<std::uint32_t>(charge), tenant});
  if (udp != nullptr) udp->charge_loan(charge);
  o.token = token;
  o.data = slice.m->loan(slice.off, slice.len);
  o.from = from;
  api_.zc_rx_loans++;
}

std::int64_t FfStack::udp_pop_loan(Socket* s, FfZcRxBuf& o) {
  if (!s->udp->readable()) return -EAGAIN;
  // The loan pins a whole data room against the owner's budget; charging
  // BEFORE the pop keeps an over-budget rejection retriable (the datagram
  // stays queued until the tenant recycles).
  const int tenant = effective_tenant(s);
  if (!tenants_.charge_loan(tenant)) return -ENOBUFS;
  if (s->udp->front().mbuf == nullptr) {
    // Copy-backed datagram (reassembled): bounce through a fresh mbuf so
    // the recycle lifecycle stays uniform. A datagram too large for any
    // data room can NEVER bounce — report -EMSGSIZE (receive it with the
    // copy path instead) rather than an -ENOBUFS no recycling could ever
    // clear. Within-room bounces happen BEFORE the pop, so -ENOBUFS
    // leaves the datagram queued and genuinely retriable.
    if (s->udp->front().data.size() + updk::kMbufHeadroom >
        pool_->data_room()) {
      tenants_.credit_loan(tenant);
      return -EMSGSIZE;
    }
    updk::Mbuf* fresh =
        bounce_into_mbuf(pool_, s->udp->front().data, &rx_stats_);
    if (fresh == nullptr) {
      tenants_.credit_loan(tenant);
      return -ENOBUFS;
    }
    const UdpDatagram d = s->udp->pop();
    zc_issue_loan(o,
                  MbufSlice{fresh, fresh->data_off,
                            static_cast<std::uint32_t>(d.data.size())},
                  fresh->room_size(), {d.src, d.src_port}, nullptr,
                  s->udp.get(), tenant);
  } else {
    // The queue's reference transfers to the loan table; the loan pins
    // (and charges) the whole data room until recycled.
    UdpDatagram d = s->udp->pop();
    zc_issue_loan(o, MbufSlice{d.mbuf, d.off, d.len}, d.mbuf->room_size(),
                  {d.src, d.src_port}, nullptr, s->udp.get(), tenant);
  }
  return 1;
}

std::int64_t FfStack::sock_zc_recv(int fd, std::span<FfZcRxBuf> out,
                                   const FfMsgBatchOpts& opts) {
  Socket* s = socks_.get(fd);
  if (s == nullptr) return -EBADF;
  if (out.empty()) return 0;
  api_.batch_calls++;
  api_.batched_items += out.size();

  std::int64_t filled = 0;
  if (s->kind == SockKind::kTcp) {
    if (s->pcb == nullptr || s->listening) return -EBADF;
    TcpPcb* pcb = s->pcb;
    const int tenant = effective_tenant(s);
    const FfSockAddrIn peer{pcb->tuple().remote_ip, pcb->tuple().remote_port};
    for (FfZcRxBuf& o : out) {
      // Over-budget mid-batch keeps the partial fill; a first-loan
      // rejection is -ENOBUFS the tenant clears by recycling.
      if (!tenants_.charge_loan(tenant)) {
        if (filled > 0) break;
        return -ENOBUFS;
      }
      const bool had_data = pcb->rx_used() > 0;
      std::size_t charge = 0;
      const auto slice = pcb->zc_rx_pop(&charge);
      if (!slice.has_value()) {
        tenants_.credit_loan(tenant);
        if (had_data) return filled > 0 ? filled : -ENOBUFS;  // bounce failed
        break;
      }
      zc_issue_loan(o, *slice, charge, peer, pcb, nullptr, tenant);
      ++filled;
    }
    if (filled > 0) return filled;
    if (pcb->eof()) return 0;
    if (pcb->error() != 0) return -pcb->error();
    return -EAGAIN;
  }
  if (s->kind == SockKind::kUdp) {
    // The recvmmsg-style burst gate: with a timeout, a short burst
    // coalesces (-EAGAIN) until it fills or the oldest datagram has
    // waited long enough — then the short count goes out.
    if (!udp_burst_ready(*s->udp, out.size(), opts.timeout_ns)) {
      return -EAGAIN;
    }
    for (FfZcRxBuf& o : out) {
      const std::int64_t r = udp_pop_loan(s, o);
      if (r == -EAGAIN) break;
      if (r != 1) return filled > 0 ? filled : r;
      ++filled;
    }
    return filled > 0 ? filled : -EAGAIN;
  }
  return -EBADF;
}

int FfStack::sock_zc_recycle(FfZcRxBuf& zc) {
  const auto it = zc_rx_loans_.find(zc.token);
  if (zc.token == 0 || it == zc_rx_loans_.end()) {
    return -EINVAL;  // double recycle / forged token
  }
  if (active_tenant_ != 0 && it->second.tenant != 0 &&
      it->second.tenant != active_tenant_) {
    return -EINVAL;  // a neighbour's loan cannot be recycled out from under it
  }
  const ZcRxLoan loan = it->second;
  zc_rx_loans_.erase(it);
  pool_->recycle(loan.m);
  tenants_.credit_loan(loan.tenant);
  if (loan.pcb != nullptr) {
    loan.pcb->zc_rx_credit(loan.charge);
    timer_sync(loan.pcb);  // the credit may have emitted a window ACK
  }
  if (loan.udp != nullptr) loan.udp->credit_loan(loan.charge);
  zc.token = 0;
  zc.data = machine::CapView{};
  api_.zc_rx_recycles++;
  sync_flush();  // a reopened-window ACK leaves before the call returns
  return 0;
}

int FfStack::sock_close(int fd) {
  Socket* s = socks_.get(fd);
  if (s == nullptr) return -EBADF;
  switch (s->kind) {
    case SockKind::kTcp:
      if (s->listening) {
        if (s->pcb != nullptr) {
          // Abort queued children and any half-open (SYN_RCVD or not yet
          // accepted) connection spawned by this listener: nobody will ever
          // accept them (FreeBSD drops the syncache the same way).
          for (auto& [t, pcb] : tcp_pcbs_) {
            if (pcb->listener == s->pcb) {
              pcb->listener = nullptr;
              if (!detached_.contains(pcb.get())) {
                pcb->abort(ECONNABORTED);
                detached_.insert(pcb.get());
              }
              timer_sync(pcb.get());
            }
          }
          s->pcb->accept_queue.clear();
          if (s->pcb->wheel_id != TimerWheel::kInvalidId) {
            wheel_.cancel(s->pcb->wheel_id);
          }
          accumulate_reaped(*s->pcb);
          tcp_listeners_.erase(s->local_port);
          dev_->unsteer_local_port(6, s->local_port);
        }
        // A dying listener ends its multishot accept arms.
        for (auto& [id, r] : urings_) {
          std::erase_if(r.accept_arms,
                        [fd](const UringReg::AcceptArm& a) {
                          return a.fd == fd;
                        });
        }
      } else if (s->pcb != nullptr) {
        s->pcb->app_close();
        timer_sync(s->pcb);
        detached_.insert(s->pcb);
      }
      uring_forget_fd(fd);  // the fd's connect/readiness arms end with it
      break;
    case SockKind::kUdp:
      udp_binds_.erase(s->local_port);
      dev_->unsteer_local_port(17, s->local_port);
      // The UdpPcb dies with the fd; outstanding loans detach from its
      // budget and recycle as pure pool returns.
      for (auto& [token, loan] : zc_rx_loans_) {
        if (loan.udp == s->udp.get()) loan.udp = nullptr;
      }
      break;
    case SockKind::kEpoll:
      // The fd may be reused: forget uring CQ sinks armed through it so a
      // later detach cannot disarm an unrelated successor instance.
      for (auto& [id, r] : urings_) std::erase(r.epoll_arms, fd);
      break;
  }
  tenants_.credit_socket(s->tenant);
  socks_.release(fd);
  sync_flush();  // FIN/RST emission is synchronous with the close
  return 0;
}

std::uint32_t FfStack::sock_readiness(int fd) const {
  const Socket* s = socks_.get(fd);
  if (s == nullptr) return kEpollErr | kEpollHup;
  std::uint32_t m = 0;
  switch (s->kind) {
    case SockKind::kTcp: {
      if (s->pcb == nullptr) break;
      if (s->listening) {
        if (!s->pcb->accept_queue.empty()) m |= kEpollIn;
        break;
      }
      if (s->pcb->readable()) m |= kEpollIn;
      if (s->pcb->writable()) m |= kEpollOut;
      if (s->pcb->error() != 0) m |= kEpollErr;
      if (s->pcb->eof() || s->pcb->closed()) m |= kEpollHup | kEpollIn;
      break;
    }
    case SockKind::kUdp:
      if (s->udp->readable()) m |= kEpollIn;
      m |= kEpollOut;
      break;
    case SockKind::kEpoll:
      break;
  }
  return m;
}

int FfStack::epoll_create() { return sock_socket(SockKind::kEpoll); }

int FfStack::epoll_ctl(int epfd, EpollOp op, int fd, std::uint32_t events,
                       std::uint64_t data) {
  Socket* e = socks_.get(epfd);
  if (e == nullptr || e->kind != SockKind::kEpoll) return -EBADF;
  if (socks_.get(fd) == nullptr) return -EBADF;
  return e->epoll->ctl(op, fd, events, data);
}

int FfStack::epoll_wait(int epfd, std::span<FfEpollEvent> out) {
  Socket* e = socks_.get(epfd);
  if (e == nullptr || e->kind != SockKind::kEpoll) return -EBADF;
  int n = 0;
  for (const auto& [fd, interest] : e->epoll->interest()) {
    if (n == static_cast<int>(out.size())) break;
    const std::uint32_t ready =
        sock_readiness(fd) & (interest.events | kEpollErr | kEpollHup);
    if (ready != 0) {
      out[n].events = ready;
      out[n].data = interest.data;
      ++n;
    }
  }
  return n;
}

int FfStack::epoll_wait_multishot(int epfd, const machine::CapView& ring,
                                  std::uint32_t capacity) {
  Socket* e = socks_.get(epfd);
  if (e == nullptr || e->kind != SockKind::kEpoll) return -EBADF;
  if (!FfEventRing::valid_capacity(capacity) ||
      ring.size() < FfEventRing::bytes_for(capacity)) {
    return -EINVAL;
  }
  // The arming call is the ONE crossing this wait stream ever pays: the
  // ring capability is validated for store access over its whole extent
  // here, exactly once (a bad grant faults now, not mid-publication).
  ring.cap().check(cheri::Access::kStore, ring.address(),
                   FfEventRing::bytes_for(capacity));
  // Arming the v2 event ring replaces any uring CQ sink: release the
  // rings' claims so a later uring_detach cannot disarm this delivery.
  uring_forget_epoll_arm(epfd);
  e->epoll->arm_multishot(ring, capacity);
  api_.multishot_arms++;
  // Publish current readiness immediately so the caller need not wait for
  // the next main-loop iteration.
  return publish_ready(*e->epoll);
}

int FfStack::epoll_cancel_multishot(int epfd) {
  Socket* e = socks_.get(epfd);
  if (e == nullptr || e->kind != SockKind::kEpoll) return -EBADF;
  if (!e->epoll->multishot_armed()) return -EINVAL;
  e->epoll->disarm_multishot();
  uring_forget_epoll_arm(epfd);  // no ring claim may outlive the arm
  return 0;
}

// ===========================================================================
// ff_uring (API v3): the unified submission/completion boundary. One arming
// crossing delegates the ring capability; from then on the main loop drains
// the SQ every iteration — ONE validation sweep over the whole pending
// window (amortized like Trampoline::invoke_batch), per-entry -EINVAL
// verdicts that never poison the rest of the sweep, and CQ backpressure
// that defers (never drops) completions.
// ===========================================================================

namespace {

/// One decoded submission, produced by the per-drain validation sweep.
struct DecodedSqe {
  UringOp op{};
  int fd = -1;
  std::uint64_t user_data = 0;
  std::array<std::uint64_t, 4> a{};
  std::uint32_t ncaps = 0;
  std::array<machine::CapView, FfUringSqe::kMaxCaps> caps{};
  std::array<std::uint64_t, FfUringSqe::kMaxTokens> tokens{};
  std::int64_t err = 0;  // sweep verdict: 0 ok, else -EINVAL
};

/// Per-iteration drain budget: bounds the work one loop turn absorbs
/// however deep the applications sized their SQs. The budget is shared by
/// ALL attached rings, split fair-share with unused shares redistributed
/// (drain_urings) — a heavy ring cannot starve a light one within an
/// iteration.
constexpr std::uint32_t kUringDrainBudget = 64;

void decode_sqe(const machine::CapView& mem, std::uint64_t off,
                DecodedSqe& d) {
  d.err = 0;  // the decode target is reused scratch: reset the verdict
  d.op = static_cast<UringOp>(mem.load<std::uint32_t>(off));
  d.fd = mem.load<std::int32_t>(off + 4);
  d.user_data = mem.load<std::uint64_t>(off + 8);
  for (std::size_t i = 0; i < 4; ++i) {
    d.a[i] = mem.load<std::uint64_t>(off + 16 + i * 8);
  }
  d.ncaps = std::min(mem.load<std::uint32_t>(off + 48),
                     static_cast<std::uint32_t>(FfUringSqe::kMaxCaps));
  if (d.op == UringOp::kRecycle) {
    for (std::size_t i = 0; i < FfUringSqe::kMaxTokens; ++i) {
      d.tokens[i] =
          mem.load<std::uint64_t>(off + FfUring::kSqePayloadOff + i * 8);
    }
  } else {
    for (std::uint32_t i = 0; i < d.ncaps; ++i) {
      d.caps[i] = mem.load_cap(off + FfUring::kSqePayloadOff + i * 16u);
    }
  }
}

/// The per-entry half of the drain's validation sweep: a forged capability
/// (untagged granule — a data overwrite cleared the tag), a sealed one, or
/// one whose bounds don't cover its own extent earns THIS entry -EINVAL;
/// the surrounding entries are untouched.
void validate_sqe(DecodedSqe& d) {
  switch (d.op) {
    case UringOp::kNop:
    case UringOp::kZcSend:
    case UringOp::kZcRecv:
    case UringOp::kZcAlloc:
    case UringOp::kRecycle:
    case UringOp::kAcceptMultishot:
    case UringOp::kEpollArm:
    case UringOp::kConnect:
    case UringOp::kClose:
    case UringOp::kEpollCtl:
    case UringOp::kSetClass:
      return;  // no SQE capability payload; tokens/fds verify at execution
    case UringOp::kWritev:
    case UringOp::kSendmsgBatch:
      for (std::uint32_t i = 0; i < d.ncaps; ++i) {
        const cheri::Capability& c = d.caps[i].cap();
        const std::uint64_t len = d.caps[i].size();
        if (!c.tag() || c.is_sealed()) {
          d.err = -EINVAL;
          return;
        }
        if (len == 0) continue;  // zero-length iovecs are legal and skipped
        try {
          c.check(cheri::Access::kLoad, c.address(), len);
        } catch (const cheri::CapFault&) {
          d.err = -EINVAL;
          return;
        }
      }
      return;
  }
  d.err = -EINVAL;  // unknown opcode
}

}  // namespace

int FfStack::uring_attach(const machine::CapView& mem,
                          std::uint32_t sq_capacity,
                          std::uint32_t cq_capacity) {
  if (!FfUring::valid_capacity(sq_capacity) ||
      !FfUring::valid_capacity(cq_capacity)) {
    return -EINVAL;
  }
  const std::size_t need = FfUring::bytes_for(sq_capacity, cq_capacity);
  if (!mem.valid() || mem.size() < need) return -EINVAL;
  // The arming crossing is the ONE whole-ring validation this attachment
  // ever pays: data and capability access over the full extent, checked
  // here and never per-operation (a bad grant faults now, not mid-drain).
  mem.cap().check(cheri::Access::kLoad, mem.address(), need);
  mem.cap().check(cheri::Access::kStore, mem.address(), need);
  mem.cap().check(cheri::Access::kLoadCap, mem.address(), need);
  mem.cap().check(cheri::Access::kStoreCap, mem.address(), need);
  if (mem.load<std::uint32_t>(FfUring::kSqCapacity) != sq_capacity ||
      mem.load<std::uint32_t>(FfUring::kCqCapacity) != cq_capacity) {
    return -EINVAL;  // header not initialized (FfUring ctor does that)
  }
  const int id = next_uring_id_++;
  urings_.emplace(id,
                  UringReg{mem, sq_capacity, cq_capacity, {}, {}, {}, {}});
  // A ring attached while the loop is between park and wake still gets an
  // accurate doorbell hint.
  if (urings_parked_) mem.atomic_store_u32(FfUring::kStackState, kStackParked);
  api_.uring_attaches++;
  return id;
}

int FfStack::uring_detach(int id) {
  const auto it = urings_.find(id);
  if (it == urings_.end()) return -EBADF;
  for (const int epfd : it->second.epoll_arms) {
    Socket* e = socks_.get(epfd);
    if (e != nullptr && e->kind == SockKind::kEpoll && e->epoll) {
      e->epoll->disarm_multishot();
    }
  }
  urings_.erase(it);
  return 0;
}

int FfStack::uring_doorbell(int id) {
  const auto it = urings_.find(id);
  if (it == urings_.end()) return -EBADF;
  api_.uring_doorbells++;
  if (tenants_.valid(it->second.tenant)) {
    tenants_.mutable_stats(it->second.tenant).doorbells++;
  }
  // A doorbell is the one ring's own crossing: it gets the full budget
  // (fair-sharing applies to the loop's per-iteration drain, where every
  // attached ring competes) — unless its own CQ is full with work pending,
  // in which case ringing the bell harder must not buy a drain the fair
  // loop would have skipped.
  const std::uint32_t consumed =
      uring_cq_stalled(it->second)
          ? 0
          : uring_drain_sqes(it->second, kUringDrainBudget);
  uring_service_accept(it->second);
  uring_service_connect(it->second);
  uring_service_fd_arms(it->second);
  flush_tx();  // the doorbell's drain must make synchronous wire progress
  // The doorbell runs on the CALLER's sealed jump; the main loop may well
  // still be parked. Leave the header telling the truth, or the next
  // empty->non-empty push would wrongly skip its doorbell and sit until
  // the heartbeat — the lost wakeup the bell exists to prevent.
  it->second.mem.atomic_store_u32(
      FfUring::kStackState, urings_parked_ ? kStackParked : kStackPolling);
  return static_cast<int>(consumed);
}

void FfStack::urings_set_parked(bool parked) {
  for (auto& [id, r] : urings_) {
    r.mem.atomic_store_u32(FfUring::kStackState,
                           parked ? kStackParked : kStackPolling);
  }
  urings_parked_ = parked;
}

bool FfStack::drain_urings() {
  if (urings_parked_) urings_set_parked(false);  // transition store only
  bool progress = false;
  if (!urings_.empty()) {
    // Fair-share the per-iteration budget across attached rings: every
    // ring gets a slice of the 64-SQE allowance proportional to its
    // tenant's DRR weight each pass (untenanted rings weigh 1), and a
    // pass's unused remainder redistributes to rings that still have
    // pending submissions — a saturated ring can take at most the leftover
    // after every light ring drained its share. A ring whose CQ is full
    // while work is pending is SKIPPED — its backpressure confines to it.
    std::uint32_t total_w = 0;
    for (auto& [id, r] : urings_) total_w += tenants_.drain_weight(r.tenant);
    std::uint32_t budget = kUringDrainBudget;
    bool spent_any = true;
    while (budget > 0 && spent_any) {
      spent_any = false;
      for (auto& [id, r] : urings_) {
        if (budget == 0) break;
        if (uring_cq_stalled(r)) continue;
        const std::uint32_t w = tenants_.drain_weight(r.tenant);
        const auto share = std::max<std::uint32_t>(
            1, kUringDrainBudget * w / std::max<std::uint32_t>(1, total_w));
        const std::uint32_t allotted = std::min(share, budget);
        const std::uint32_t spent = uring_drain_sqes(r, allotted);
        budget -= spent;
        spent_any |= spent > 0;
        progress |= spent > 0;
        // A ring cut off by its share with submissions still queued was
        // THROTTLED by weight, not starved by neighbours: count it so the
        // census can tell scheduling pressure from stack failure.
        if (spent == allotted && spent > 0 && uring_sq_pending(r) > 0) {
          api_.sq_drain_throttled++;
          if (tenants_.valid(r.tenant)) {
            tenants_.mutable_stats(r.tenant).sq_drain_throttled++;
          }
        }
      }
    }
  }
  for (auto& [id, r] : urings_) {
    progress |= uring_service_accept(r);
    progress |= uring_service_connect(r);
    progress |= uring_service_fd_arms(r);
  }
  return progress;
}

std::uint32_t FfStack::uring_cq_space(const UringReg& r) const {
  const std::uint32_t head = r.mem.atomic_load_u32(FfUring::kCqHead);
  const std::uint32_t tail = r.mem.atomic_load_u32(FfUring::kCqTail);
  return r.cq_cap - (tail - head);
}

std::uint32_t FfStack::uring_sq_pending(const UringReg& r) const {
  return r.mem.atomic_load_u32(FfUring::kSqTail) -
         r.mem.atomic_load_u32(FfUring::kSqHead);
}

bool FfStack::uring_cq_stalled(UringReg& r) {
  if (uring_cq_space(r) > 0) {
    r.cq_stall_rounds = 0;
    return false;
  }
  // CQ completely full. Only count a STALL when this ring actually has
  // work the full CQ is blocking — a quiet ring whose app reaps lazily is
  // not deferring anything.
  const bool work_pending = uring_sq_pending(r) > 0 ||
                            !r.accept_arms.empty() || !r.connect_arms.empty()
                            || !r.fd_arms.empty();
  if (!work_pending) return true;  // nothing to defer, nothing to charge
  api_.cq_deferrals++;
  if (tenants_.valid(r.tenant)) tenants_.mutable_stats(r.tenant).cq_deferrals++;
  r.cq_stall_rounds++;
  // Past the tenant's stall allowance the ring's RE-DERIVABLE subscription
  // state is evicted: multishot accept and readiness arms can be re-armed
  // by the app once it reaps, but until then they are the only stack-side
  // state a never-reaping ring forces the stack to retain and re-walk.
  // Queued SQEs are NOT touched — they live in the tenant's own ring
  // memory, bounded by its sq_cap, not by stack-side memory.
  const std::uint32_t cap =
      tenants_.valid(r.tenant) ? tenants_.quota(r.tenant).max_cq_stall_rounds
                               : 0;
  if (cap != 0 && r.cq_stall_rounds > cap &&
      (!r.accept_arms.empty() || !r.fd_arms.empty())) {
    r.accept_arms.clear();
    r.fd_arms.clear();
    api_.cq_deferral_evictions++;
    tenants_.mutable_stats(r.tenant).cq_deferral_evictions++;
  }
  return true;
}

void FfStack::note_sqe_error(const UringReg& r) {
  api_.uring_sqe_errors++;
  if (tenants_.valid(r.tenant)) tenants_.mutable_stats(r.tenant).sqe_errors++;
}

bool FfStack::uring_cq_emit(UringReg& r, std::uint64_t user_data,
                            std::int64_t result, UringOp op,
                            std::uint32_t flags, std::uint64_t aux0,
                            std::uint64_t aux1,
                            const machine::CapView* cap) {
  const std::uint32_t head = r.mem.atomic_load_u32(FfUring::kCqHead);
  const std::uint32_t tail = r.mem.atomic_load_u32(FfUring::kCqTail);
  if (tail - head >= r.cq_cap) {  // full: defer (retry later), never drop
    r.mem.atomic_store_u32(FfUring::kCqOverflow,
                           r.mem.atomic_load_u32(FfUring::kCqOverflow) + 1);
    return false;
  }
  const std::uint64_t off =
      FfUring::cqe_off(r.sq_cap, tail & (r.cq_cap - 1));
  r.mem.store<std::uint64_t>(off, user_data);
  r.mem.store<std::int64_t>(off + 8, result);
  r.mem.store<std::uint32_t>(off + 16, static_cast<std::uint32_t>(op));
  r.mem.store<std::uint32_t>(off + 20, flags);
  r.mem.store<std::uint64_t>(off + 24, aux0);
  r.mem.store<std::uint64_t>(off + 32, aux1);
  if (cap != nullptr) {
    r.mem.store_cap(off + FfUring::kCqeCapOff, *cap);
  }
  r.mem.atomic_store_u32(FfUring::kCqTail, tail + 1);  // release: payload 1st
  api_.uring_cqes++;
  return true;
}

std::uint32_t FfStack::uring_drain_sqes(UringReg& r, std::uint32_t budget) {
  std::uint32_t consumed = 0;
  // Ops executed by the drain defer their tail flushes (sync_flush) to the
  // ONE flush the caller performs after the whole window — per-SQE driver
  // doorbells would undo the amortization the ring exists for. The safety
  // flush before send-ring writes is not affected.
  in_uring_drain_ = true;
  // Ops executed from this ring charge its tenant: zc reservations, loans
  // and token-table lookups all read the adopted context.
  active_tenant_ = r.tenant;
  budget = std::min(budget, kUringDrainBudget);  // decode scratch bound
  const std::uint32_t tail = r.mem.atomic_load_u32(FfUring::kSqTail);
  std::uint32_t head = r.mem.atomic_load_u32(FfUring::kSqHead);
  std::uint32_t pending = tail - head;
  if (pending > 0 && budget > 0) {
    // Peek the HEAD entry's completion demand before committing to a
    // sweep: the drain is FIFO, so if the head cannot complete, nothing
    // can — skip entirely rather than re-decode the same window every
    // iteration (and inflate the very sweep counters the census gates on).
    const std::uint64_t hoff =
        FfUring::sqe_off(r.sq_cap, head & (r.sq_cap - 1));
    std::uint32_t head_need = 1;
    const auto head_op =
        static_cast<UringOp>(r.mem.load<std::uint32_t>(hoff));
    if (head_op == UringOp::kZcRecv || head_op == UringOp::kZcAlloc) {
      head_need = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
          r.mem.load<std::uint64_t>(hoff + 16), 1,
          std::min<std::uint32_t>(FfUringSqe::kMaxCaps, r.cq_cap)));
    }
    if (uring_cq_space(r) < head_need) {
      r.mem.atomic_store_u32(
          FfUring::kCqOverflow,
          r.mem.atomic_load_u32(FfUring::kCqOverflow) + 1);
      // A partially-full CQ that cannot take the head's multi-CQE burst is
      // the same deferral the stall check counts for a fully-full one.
      api_.cq_deferrals++;
      if (tenants_.valid(r.tenant)) {
        tenants_.mutable_stats(r.tenant).cq_deferrals++;
      }
      pending = 0;
    }
  }
  if (pending > 0 && budget > 0) {
    pending = std::min(pending, budget);
    api_.uring_drains++;
    // Pass 1: ONE capability validation sweep over the whole pending
    // window — the amortization Trampoline::invoke_batch performs for
    // syscall envelopes, applied to the ring. Verdicts are per entry.
    // The decode scratch persists per thread: constructing (zeroing) 64
    // entries of CapView arrays on every drain would tax the hot loop;
    // decode_sqe fully rewrites every field it later reads.
    static thread_local std::array<DecodedSqe, kUringDrainBudget> win;
    for (std::uint32_t i = 0; i < pending; ++i) {
      decode_sqe(r.mem,
                 FfUring::sqe_off(r.sq_cap, (head + i) & (r.sq_cap - 1)),
                 win[i]);
      validate_sqe(win[i]);
    }
    api_.validation_sweeps++;

    // Pass 2: execute in order. An entry whose completions don't fit the
    // CQ stops the drain BEFORE executing (backpressure: it stays queued
    // and re-runs next iteration; the stack never drops a CQE).
    for (std::uint32_t i = 0; i < pending; ++i) {
      DecodedSqe& d = win[i];
      std::uint32_t need_cq = 1;
      if ((d.op == UringOp::kZcRecv || d.op == UringOp::kZcAlloc) &&
          d.err == 0) {
        need_cq = static_cast<std::uint32_t>(std::clamp<std::uint64_t>(
            d.a[0], 1, std::min<std::uint32_t>(FfUringSqe::kMaxCaps,
                                               r.cq_cap)));
      }
      if (uring_cq_space(r) < need_cq) {
        r.mem.atomic_store_u32(
            FfUring::kCqOverflow,
            r.mem.atomic_load_u32(FfUring::kCqOverflow) + 1);
        break;
      }
      if (d.err != 0) {  // sweep verdict: this entry alone fails
        uring_cq_emit(r, d.user_data, d.err, d.op, 0, 0, 0, nullptr);
        note_sqe_error(r);
      } else {
        switch (d.op) {
          case UringOp::kNop:
            uring_cq_emit(r, d.user_data, 0, d.op, 0, 0, 0, nullptr);
            break;
          case UringOp::kWritev: {
            FfIovec iov[FfUringSqe::kMaxCaps];
            for (std::uint32_t k = 0; k < d.ncaps; ++k) {
              iov[k] = {d.caps[k],
                        static_cast<std::size_t>(d.caps[k].size())};
            }
            api_.batch_calls++;
            api_.batched_items += d.ncaps;
            const std::int64_t res =
                writev_impl(d.fd, {iov, d.ncaps}, /*swept=*/true);
            uring_cq_emit(r, d.user_data, res, d.op, 0, 0, 0, nullptr);
            break;
          }
          case UringOp::kSendmsgBatch: {
            FfMsg msgs[FfUringSqe::kMaxCaps];
            const FfSockAddrIn to{
                Ipv4Addr{static_cast<std::uint32_t>(d.a[0])},
                static_cast<std::uint16_t>(d.a[1])};
            for (std::uint32_t k = 0; k < d.ncaps; ++k) {
              msgs[k] = {d.caps[k],
                         static_cast<std::size_t>(d.caps[k].size()), to, 0};
            }
            const std::int64_t res =
                sendmsg_impl(d.fd, {msgs, d.ncaps}, /*swept=*/true);
            uring_cq_emit(r, d.user_data, res, d.op, 0, 0, 0, nullptr);
            break;
          }
          case UringOp::kZcSend: {
            FfZcBuf z;
            z.token = d.a[0];
            const std::int64_t res = sock_zc_send(
                d.fd, z, d.a[1], Ipv4Addr{static_cast<std::uint32_t>(d.a[2])},
                static_cast<std::uint16_t>(d.a[3]));
            uring_cq_emit(r, d.user_data, res, d.op, 0, 0, 0, nullptr);
            if (res < 0) note_sqe_error(r);  // forged tokens land here
            break;
          }
          case UringOp::kZcAlloc: {
            // Ring-native zc TX reservations: each CQE hands back a token
            // plus a WRITABLE exactly-bounded capability into a fresh mbuf
            // data room — the app fills its payload in place and submits
            // OP_ZC_SEND, with zero crossings for the whole round trip.
            FfZcBuf bufs[FfUringSqe::kMaxCaps];
            std::uint32_t got = 0;
            std::int64_t err = 0;
            for (; got < need_cq; ++got) {
              const int rc = sock_zc_alloc(d.a[1], &bufs[got]);
              if (rc != 0) {
                err = rc;
                break;
              }
            }
            if (got == 0) {
              uring_cq_emit(r, d.user_data, err, d.op, 0, 0, 0, nullptr);
              note_sqe_error(r);
            } else {
              for (std::uint32_t k = 0; k < got; ++k) {
                uring_cq_emit(r, d.user_data,
                              static_cast<std::int64_t>(bufs[k].data.size()),
                              d.op, k + 1 < got ? kCqeMore : 0,
                              bufs[k].token, 0, &bufs[k].data);
              }
            }
            break;
          }
          case UringOp::kZcRecv: {
            FfZcRxBuf loans[FfUringSqe::kMaxCaps];
            FfMsgBatchOpts opts;
            opts.timeout_ns = d.a[1];  // UDP loan bursts: recvmmsg timeout
            const std::int64_t res =
                sock_zc_recv(d.fd, {loans, need_cq}, opts);
            if (res > 0) {
              for (std::int64_t k = 0; k < res; ++k) {
                FfZcRxBuf& ln = loans[k];
                uring_cq_emit(
                    r, d.user_data,
                    static_cast<std::int64_t>(ln.data.size()), d.op,
                    k + 1 < res ? kCqeMore : 0, ln.token,
                    uring_pack_addr(ln.from), &ln.data);
              }
            } else {
              // EOF carries its own flag: result 0 alone could also be a
              // legal zero-length datagram loan (token in aux0). A burst
              // still COALESCING (queued datagrams waiting out the a1
              // timeout) marks aux1: readiness will NOT re-publish for an
              // unchanged mask, so the consumer must repoll on its own
              // schedule rather than wait for an event that never comes.
              std::uint64_t coalescing = 0;
              if (res == -EAGAIN) {
                const Socket* sk = socks_.get(d.fd);
                if (sk != nullptr && sk->kind == SockKind::kUdp &&
                    sk->udp->readable()) {
                  coalescing = 1;
                }
              }
              uring_cq_emit(r, d.user_data, res, d.op,
                            res == 0 ? kCqeEof : 0, 0, coalescing, nullptr);
            }
            break;
          }
          case UringOp::kRecycle: {
            const auto cnt = static_cast<std::uint32_t>(
                std::min<std::uint64_t>(d.a[0], FfUringSqe::kMaxTokens));
            std::int64_t ok = 0;
            for (std::uint32_t k = 0; k < cnt; ++k) {
              FfZcRxBuf z;
              z.token = d.tokens[k];
              if (sock_zc_recycle(z) == 0) ++ok;
            }
            // Forged/replayed tokens are per-token rejections (aux0 counts
            // them); an entry with NOTHING valid answers -EINVAL.
            if (cnt > 0 && ok == 0) {
              uring_cq_emit(r, d.user_data, -EINVAL, d.op, 0, cnt, 0,
                            nullptr);
              note_sqe_error(r);
            } else {
              uring_cq_emit(r, d.user_data, ok, d.op, 0, cnt - ok, 0,
                            nullptr);
            }
            break;
          }
          case UringOp::kAcceptMultishot: {
            Socket* s = socks_.get(d.fd);
            if (s == nullptr || s->kind != SockKind::kTcp ||
                !s->listening) {
              uring_cq_emit(r, d.user_data, -EBADF, d.op, 0, 0, 0, nullptr);
              break;
            }
            // Arm (or re-arm) the listener: every accepted connection from
            // here on posts a CQE carrying the new fd — no ack CQE on
            // success, exactly io_uring's multishot accept discipline.
            std::erase_if(r.accept_arms,
                          [&d](const UringReg::AcceptArm& a) {
                            return a.fd == d.fd;
                          });
            r.accept_arms.push_back({d.fd, d.user_data,
                                     (d.a[0] & 1) != 0});
            break;
          }
          case UringOp::kConnect: {
            const FfSockAddrIn to = uring_unpack_addr(d.a[0]);
            const std::int64_t res = sock_connect(d.fd, to.ip, to.port);
            if (res == -EINPROGRESS) {
              // The CQE posts when the handshake resolves — the app never
              // polls or re-crosses for connection establishment.
              r.connect_arms.push_back({d.fd, d.user_data});
            } else {
              uring_cq_emit(r, d.user_data, res, d.op, 0,
                            static_cast<std::uint64_t>(
                                static_cast<std::uint32_t>(d.fd)),
                            0, nullptr);
              if (res < 0) note_sqe_error(r);
            }
            break;
          }
          case UringOp::kClose: {
            const std::int64_t res = sock_close(d.fd);
            uring_cq_emit(r, d.user_data, res, d.op, 0,
                          static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(d.fd)),
                          0, nullptr);
            if (res < 0) note_sqe_error(r);
            break;
          }
          case UringOp::kEpollCtl: {
            const auto op_code = static_cast<std::uint64_t>(d.a[0]);
            std::int64_t res = -EINVAL;
            if (op_code >= 1 && op_code <= 3) {
              res = epoll_ctl(d.fd, static_cast<EpollOp>(op_code),
                              static_cast<int>(d.a[1]),
                              static_cast<std::uint32_t>(d.a[2]), d.a[3]);
            }
            uring_cq_emit(r, d.user_data, res, d.op, 0, 0, 0, nullptr);
            if (res < 0) note_sqe_error(r);
            break;
          }
          case UringOp::kSetClass: {
            // Immediate verdict, like OP_EPOLL_CTL: class changes are
            // control-plane ops that ride the ring with zero crossings.
            const std::int64_t res =
                sock_set_class(d.fd, static_cast<std::uint32_t>(d.a[0]));
            uring_cq_emit(r, d.user_data, res, d.op, 0,
                          static_cast<std::uint64_t>(
                              static_cast<std::uint32_t>(d.fd)),
                          0, nullptr);
            if (res < 0) note_sqe_error(r);
            break;
          }
          case UringOp::kEpollArm: {
            Socket* e = socks_.get(d.fd);
            if (e == nullptr || e->kind != SockKind::kEpoll || !e->epoll) {
              uring_cq_emit(r, d.user_data, -EBADF, d.op, 0, 0, 0, nullptr);
              break;
            }
            // Re-arming moves ownership: no other ring may keep a claim
            // on this epfd (its detach would disarm OUR delivery).
            uring_forget_epoll_arm(d.fd);
            UringReg* reg = &r;  // std::map references are stable
            const std::uint64_t ud = d.user_data;
            e->epoll->arm_multishot_sink(
                [this, reg, ud](std::uint32_t ready, std::uint64_t data) {
                  return uring_cq_emit(*reg, ud,
                                       static_cast<std::int64_t>(ready),
                                       UringOp::kEpollArm, kCqeMore, data, 0,
                                       nullptr);
                });
            if (std::find(r.epoll_arms.begin(), r.epoll_arms.end(), d.fd) ==
                r.epoll_arms.end()) {
              r.epoll_arms.push_back(d.fd);
            }
            api_.multishot_arms++;
            publish_ready(*e->epoll);  // immediate readiness snapshot
            break;
          }
        }
      }
      ++head;
      ++consumed;
      api_.uring_sqes++;
    }
    r.mem.atomic_store_u32(FfUring::kSqHead, head);  // release consumed
  }
  in_uring_drain_ = false;
  active_tenant_ = 0;
  return consumed;
}

void FfStack::uring_forget_epoll_arm(int epfd) {
  for (auto& [id, reg] : urings_) std::erase(reg.epoll_arms, epfd);
}

bool FfStack::uring_service_accept(UringReg& r) {
  bool progress = false;
  for (auto it = r.accept_arms.begin(); it != r.accept_arms.end();) {
    Socket* s = socks_.get(it->fd);
    if (s == nullptr || s->kind != SockKind::kTcp || !s->listening ||
        s->pcb == nullptr) {
      it = r.accept_arms.erase(it);  // listener died: the arm ends
      continue;
    }
    while (true) {
      if (uring_cq_space(r) == 0) {
        if (!s->pcb->accept_queue.empty()) {
          // Connections stay queued; defer (never drop) the CQEs.
          r.mem.atomic_store_u32(
              FfUring::kCqOverflow,
              r.mem.atomic_load_u32(FfUring::kCqOverflow) + 1);
        }
        break;
      }
      FourTuple peer;
      const int nfd = sock_accept(it->fd, &peer);
      if (nfd < 0) break;
      uring_cq_emit(r, it->user_data, nfd, UringOp::kAcceptMultishot,
                    kCqeMore,
                    uring_pack_addr({peer.remote_ip, peer.remote_port}), 0,
                    nullptr);
      if (it->auto_arm) {
        // The accepted fd is born armed: readiness edges post into THIS
        // ring with the fd as the event payload — no OP_EPOLL_CTL
        // round trip per connection.
        r.fd_arms.push_back({nfd, it->user_data, 0, 0});
      }
      progress = true;
    }
    ++it;
  }
  return progress;
}

bool FfStack::uring_service_connect(UringReg& r) {
  bool progress = false;
  for (auto it = r.connect_arms.begin(); it != r.connect_arms.end();) {
    const Socket* s = socks_.get(it->fd);
    const TcpPcb* pcb = s != nullptr ? s->pcb : nullptr;
    std::int64_t res = 1;  // sentinel: still in flight, no CQE yet
    if (pcb == nullptr) {
      res = -EBADF;  // fd closed mid-handshake
    } else if (pcb->error() != 0) {
      res = -pcb->error();
    } else if (pcb->connected()) {
      res = 0;
    } else if (pcb->closed()) {
      res = -ECONNABORTED;
    }
    if (res == 1) {
      ++it;  // SYN_SENT/SYN_RCVD: the rexmit machinery is still trying
      continue;
    }
    if (uring_cq_space(r) == 0) {  // defer (never drop) the verdict
      r.mem.atomic_store_u32(
          FfUring::kCqOverflow,
          r.mem.atomic_load_u32(FfUring::kCqOverflow) + 1);
      break;
    }
    uring_cq_emit(r, it->user_data, res, UringOp::kConnect, 0,
                  static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(it->fd)),
                  0, nullptr);
    if (res < 0) note_sqe_error(r);
    it = r.connect_arms.erase(it);
    progress = true;
  }
  return progress;
}

bool FfStack::uring_service_fd_arms(UringReg& r) {
  bool progress = false;
  for (auto it = r.fd_arms.begin(); it != r.fd_arms.end();) {
    if (socks_.get(it->fd) == nullptr) {
      it = r.fd_arms.erase(it);  // fd released: the arm ends silently
      continue;
    }
    const std::uint32_t mask = sock_readiness(it->fd);
    const std::uint64_t gen = sock_rx_activity(it->fd);
    if (mask == 0) {
      // Went quiet: remember silently so the next edge republishes.
      it->last_mask = 0;
      it->last_gen = gen;
      ++it;
      continue;
    }
    if (mask == it->last_mask && gen == it->last_gen) {
      ++it;  // unchanged readiness never spams the CQ
      continue;
    }
    if (uring_cq_space(r) == 0) {  // defer: last_* stays stale, so the
      r.mem.atomic_store_u32(      // edge re-derives next service pass
          FfUring::kCqOverflow,
          r.mem.atomic_load_u32(FfUring::kCqOverflow) + 1);
      break;
    }
    uring_cq_emit(r, it->user_data, static_cast<std::int64_t>(mask),
                  UringOp::kEpollArm, kCqeMore,
                  static_cast<std::uint64_t>(
                      static_cast<std::uint32_t>(it->fd)),
                  0, nullptr);
    it->last_mask = mask;
    it->last_gen = gen;
    api_.multishot_events++;
    progress = true;
    ++it;
  }
  return progress;
}

void FfStack::uring_forget_fd(int fd) {
  for (auto& [id, reg] : urings_) {
    std::erase_if(reg.connect_arms,
                  [fd](const UringReg::ConnectArm& a) { return a.fd == fd; });
    std::erase_if(reg.fd_arms,
                  [fd](const UringReg::FdArm& a) { return a.fd == fd; });
  }
}

TcpPcb* FfStack::find_pcb(const FourTuple& t) {
  const auto it = tcp_pcbs_.find(t);
  return it != tcp_pcbs_.end() ? it->second.get() : nullptr;
}

const TcpPcb* FfStack::find_listener(std::uint16_t port) const {
  const auto it = tcp_listeners_.find(port);
  return it != tcp_listeners_.end() ? it->second.get() : nullptr;
}

void FfStack::send_ping(Ipv4Addr dst, std::uint16_t id, std::uint16_t seq,
                        std::size_t payload_len) {
  std::vector<std::byte> payload(payload_len, std::byte{0xA5});
  const auto msg =
      build_icmp_echo(IcmpHeader::kEchoRequest, id, seq, payload);
  send_ipv4(dst, kIpProtoIcmp, msg);
  flush_tx();
}

}  // namespace cherinet::fstack
