#include "fstack/tx_chain.hpp"

#include <algorithm>
#include <stdexcept>

#include "fstack/checksum.hpp"

namespace cherinet::fstack {

TxChain::TxChain(TxChain&& other) noexcept
    : ring_(std::move(other.ring_)),
      pool_(other.pool_),
      stats_(other.stats_),
      cache_csums_(other.cache_csums_),
      segs_(std::move(other.segs_)),
      used_(other.used_) {
  other.segs_.clear();
  other.used_ = 0;
  other.pool_ = nullptr;
}

TxChain& TxChain::operator=(TxChain&& other) noexcept {
  if (this != &other) {
    release_all();
    ring_ = std::move(other.ring_);
    pool_ = other.pool_;
    stats_ = other.stats_;
    cache_csums_ = other.cache_csums_;
    segs_ = std::move(other.segs_);
    used_ = other.used_;
    other.segs_.clear();
    other.used_ = 0;
    other.pool_ = nullptr;
  }
  return *this;
}

void TxChain::release_all() {
  for (Seg& s : segs_) {
    if (s.m != nullptr && pool_ != nullptr) pool_->release_tx(s.m);
  }
  segs_.clear();
  // The copy ring's bytes are dropped with their segments.
  if (ring_.used() > 0) ring_.consume(ring_.used());
  used_ = 0;
}

namespace {
// Copy-backed slices below this size coalesce into their predecessor (sums
// composing via checksum_combine), so a small-write workload cannot shatter
// the chain into more extents per segment than gather() can carry. An
// MSS-sized element stays its own slice — the alignment that lets emission
// use its cached checksum whole.
constexpr std::uint32_t kCoalesceBelow = 1448;
}  // namespace

std::size_t TxChain::writev_from(std::span<const FfIovec> iov) {
  // Clamp to the CHAIN budget, not just the ring's: zc bytes occupy the
  // same configured send window even though their bytes live elsewhere.
  std::size_t budget = free();
  std::size_t total = 0;
  for (const FfIovec& e : iov) {
    if (e.len == 0) continue;
    const std::size_t want = std::min(e.len, budget);
    if (want == 0) break;
    std::uint32_t csum = 0;
    // With checksum offload negotiated the admit copy does not price a
    // wire sum at all — the device inserts it, so the copy walk stays a
    // pure copy and stack_checksum_bytes never moves.
    const std::size_t got =
        ring_.write_from(e.buf, 0, want, cache_csums_ ? &csum : nullptr);
    if (got > 0) {
      // Adjacent copied bytes are contiguous in ring order, so a small
      // back slice extends in place — its cached sum composes with the
      // new bytes' sum at the extension offset's parity.
      if (!segs_.empty() && segs_.back().m == nullptr &&
          segs_.back().len < kCoalesceBelow) {
        Seg& back = segs_.back();
        if (back.csum_ok && cache_csums_) {
          back.csum = checksum_combine(back.csum, csum, back.len);
        } else {
          back.csum_ok = false;
        }
        back.len += static_cast<std::uint32_t>(got);
      } else {
        segs_.push_back(Seg{nullptr, 0, static_cast<std::uint32_t>(got),
                            csum, cache_csums_});
      }
      used_ += got;
      if (stats_ != nullptr) {
        stats_->copied_bytes += got;
        if (cache_csums_) stats_->stack_checksum_bytes += got;
      }
    }
    total += got;
    budget -= got;
    if (got < e.len) break;  // budget filled mid-batch: short count
  }
  return total;
}

bool TxChain::push_zc(updk::Mbuf* m, std::uint32_t off, std::uint32_t len,
                      std::uint32_t csum) {
  if (m == nullptr || len == 0 || pool_ == nullptr) return false;
  if (len > free()) return false;  // all-or-nothing: token stays retriable
  segs_.push_back(Seg{m, off, len, csum, cache_csums_});
  used_ += len;
  if (stats_ != nullptr) {
    stats_->zc_bytes += len;
    stats_->zc_segs++;
  }
  return true;
}

void TxChain::peek(std::size_t off, std::span<std::byte> out) const {
  if (off + out.size() > used_) {
    throw std::out_of_range("TxChain::peek beyond buffered data");
  }
  std::size_t done = 0;
  std::size_t pos = 0;       // logical chain offset of the current segment
  std::size_t ring_off = 0;  // copy-ring bytes preceding the current segment
  for (const Seg& s : segs_) {
    if (done == out.size()) break;
    const std::size_t seg_end = pos + s.len;
    if (off + done < seg_end) {
      const std::size_t in_seg = off + done - pos;
      const std::size_t k = std::min(out.size() - done, s.len - in_seg);
      if (s.m != nullptr) {
        // Gather straight out of the still-live data room (retransmission
        // re-reads exactly these bytes).
        s.m->room.window(s.off + in_seg, k).read(0, out.subspan(done, k));
      } else {
        ring_.peek(ring_off + in_seg, out.subspan(done, k));
      }
      done += k;
    }
    pos = seg_end;
    if (s.m == nullptr) ring_off += s.len;
  }
}

std::size_t TxChain::gather(std::size_t off, std::size_t len,
                            std::span<TxPiece> out) const {
  if (off + len > used_) {
    throw std::out_of_range("TxChain::gather beyond buffered data");
  }
  std::size_t n = 0;
  std::size_t done = 0;
  std::size_t pos = 0;       // logical chain offset of the current segment
  std::size_t ring_off = 0;  // copy-ring bytes preceding the current segment
  for (const Seg& s : segs_) {
    if (done == len) break;
    const std::size_t seg_end = pos + s.len;
    if (off + done < seg_end) {
      const std::size_t in_seg = off + done - pos;
      const std::size_t k = std::min(len - done, s.len - in_seg);
      // A cached sum covers the piece only when the piece IS the slice.
      const bool whole = in_seg == 0 && k == s.len && s.csum_ok;
      if (s.m != nullptr) {
        if (n == out.size()) return 0;
        out[n++] = TxPiece{s.m, machine::CapView{},
                           static_cast<std::uint32_t>(s.off + in_seg),
                           static_cast<std::uint32_t>(k), s.csum, whole};
      } else {
        SockBuf::PhysSpan ps[2];
        const std::size_t nspans =
            ring_.phys_spans(ring_off + in_seg, k, ps);
        for (std::size_t i = 0; i < nspans; ++i) {
          if (n == out.size()) return 0;
          out[n++] = TxPiece{
              nullptr, ring_.memory().window(ps[i].off, ps[i].len), 0,
              static_cast<std::uint32_t>(ps[i].len), s.csum,
              // A wrapped slice splits into two extents; the cached sum
              // spans both, so only an unwrapped whole slice composes.
              whole && nspans == 1};
        }
      }
      done += k;
    }
    pos = seg_end;
    if (s.m == nullptr) ring_off += s.len;
  }
  return n;
}

void TxChain::consume(std::size_t n) {
  if (n > used_) {
    throw std::out_of_range("TxChain::consume beyond buffered data");
  }
  used_ -= n;
  while (n > 0) {
    Seg& s = segs_.front();
    const auto k = static_cast<std::uint32_t>(
        std::min<std::size_t>(n, s.len));
    if (s.m == nullptr) {
      ring_.consume(k);
    } else {
      s.off += k;  // partial ACK trims the head slice in place
    }
    s.len -= k;
    n -= k;
    if (s.len == 0) {
      if (s.m != nullptr && pool_ != nullptr) pool_->release_tx(s.m);
      segs_.pop_front();
    } else {
      s.csum_ok = false;  // the cached sum covered the untrimmed slice
    }
  }
}

}  // namespace cherinet::fstack
