#include "fstack/tx_chain.hpp"

#include <algorithm>
#include <stdexcept>

namespace cherinet::fstack {

TxChain::TxChain(TxChain&& other) noexcept
    : ring_(std::move(other.ring_)),
      pool_(other.pool_),
      stats_(other.stats_),
      segs_(std::move(other.segs_)),
      used_(other.used_) {
  other.segs_.clear();
  other.used_ = 0;
  other.pool_ = nullptr;
}

TxChain& TxChain::operator=(TxChain&& other) noexcept {
  if (this != &other) {
    release_all();
    ring_ = std::move(other.ring_);
    pool_ = other.pool_;
    stats_ = other.stats_;
    segs_ = std::move(other.segs_);
    used_ = other.used_;
    other.segs_.clear();
    other.used_ = 0;
    other.pool_ = nullptr;
  }
  return *this;
}

void TxChain::release_all() {
  for (Seg& s : segs_) {
    if (s.m != nullptr && pool_ != nullptr) pool_->release_tx(s.m);
  }
  segs_.clear();
  // The copy ring's bytes are dropped with their segments.
  if (ring_.used() > 0) ring_.consume(ring_.used());
  used_ = 0;
}

void TxChain::append_copied(std::size_t n) {
  // Adjacent copy-backed bytes coalesce into one segment: the ring keeps
  // them contiguous in chain order, so only a zc slice forces a boundary.
  if (!segs_.empty() && segs_.back().m == nullptr) {
    segs_.back().len += static_cast<std::uint32_t>(n);
  } else {
    segs_.push_back(Seg{nullptr, 0, static_cast<std::uint32_t>(n)});
  }
  used_ += n;
  if (stats_ != nullptr) stats_->copied_bytes += n;
}

std::size_t TxChain::writev_from(std::span<const FfIovec> iov) {
  // Clamp to the CHAIN budget, not just the ring's: zc bytes occupy the
  // same configured send window even though their bytes live elsewhere.
  std::size_t budget = free();
  std::size_t total = 0;
  for (const FfIovec& e : iov) {
    if (e.len == 0) continue;
    const std::size_t want = std::min(e.len, budget);
    if (want == 0) break;
    const std::size_t got = ring_.write_from(e.buf, 0, want);
    total += got;
    budget -= got;
    if (got < e.len) break;  // budget filled mid-batch: short count
  }
  if (total > 0) append_copied(total);
  return total;
}

bool TxChain::push_zc(updk::Mbuf* m, std::uint32_t off, std::uint32_t len) {
  if (m == nullptr || len == 0 || pool_ == nullptr) return false;
  if (len > free()) return false;  // all-or-nothing: token stays retriable
  segs_.push_back(Seg{m, off, len});
  used_ += len;
  if (stats_ != nullptr) {
    stats_->zc_bytes += len;
    stats_->zc_segs++;
  }
  return true;
}

void TxChain::peek(std::size_t off, std::span<std::byte> out) const {
  if (off + out.size() > used_) {
    throw std::out_of_range("TxChain::peek beyond buffered data");
  }
  std::size_t done = 0;
  std::size_t pos = 0;       // logical chain offset of the current segment
  std::size_t ring_off = 0;  // copy-ring bytes preceding the current segment
  for (const Seg& s : segs_) {
    if (done == out.size()) break;
    const std::size_t seg_end = pos + s.len;
    if (off + done < seg_end) {
      const std::size_t in_seg = off + done - pos;
      const std::size_t k = std::min(out.size() - done, s.len - in_seg);
      if (s.m != nullptr) {
        // Gather straight out of the still-live data room (retransmission
        // re-reads exactly these bytes).
        s.m->room.window(s.off + in_seg, k).read(0, out.subspan(done, k));
      } else {
        ring_.peek(ring_off + in_seg, out.subspan(done, k));
      }
      done += k;
    }
    pos = seg_end;
    if (s.m == nullptr) ring_off += s.len;
  }
}

void TxChain::consume(std::size_t n) {
  if (n > used_) {
    throw std::out_of_range("TxChain::consume beyond buffered data");
  }
  used_ -= n;
  while (n > 0) {
    Seg& s = segs_.front();
    const auto k = static_cast<std::uint32_t>(
        std::min<std::size_t>(n, s.len));
    if (s.m == nullptr) {
      ring_.consume(k);
    } else {
      s.off += k;  // partial ACK trims the head slice in place
    }
    s.len -= k;
    n -= k;
    if (s.len == 0) {
      if (s.m != nullptr && pool_ != nullptr) pool_->release_tx(s.m);
      segs_.pop_front();
    }
  }
}

}  // namespace cherinet::fstack
