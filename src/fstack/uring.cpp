// FfUring application side: submission by capability store, completion by
// capability load. The stack side of the same ABI — the drain sweep, the
// per-entry verdicts, the CQ backpressure — lives with the stack's main
// loop in stack.cpp (FfStack::uring_*); this file is everything the
// APPLICATION compartment touches, so the boundary of trust between the
// two halves is the ring memory itself, nothing more.
#include "fstack/uring.hpp"

namespace cherinet::fstack {

FfUring::FfUring(machine::CapView mem, std::uint32_t sq_capacity,
                 std::uint32_t cq_capacity)
    : mem_(mem), sq_cap_(sq_capacity), cq_cap_(cq_capacity) {
  mem_.atomic_store_u32(kSqHead, 0);
  mem_.atomic_store_u32(kSqTail, 0);
  mem_.atomic_store_u32(kCqHead, 0);
  mem_.atomic_store_u32(kCqTail, 0);
  mem_.atomic_store_u32(kSqCapacity, sq_capacity);
  mem_.atomic_store_u32(kCqCapacity, cq_capacity);
  mem_.atomic_store_u32(kCqOverflow, 0);
  mem_.atomic_store_u32(kSqDropped, 0);
  mem_.atomic_store_u32(kStackState, kStackPolling);
}

FfUring::Push FfUring::sq_push(const FfUringSqe& e) {
  const std::uint32_t head = mem_.atomic_load_u32(kSqHead);  // acquire
  const std::uint32_t tail = mem_.atomic_load_u32(kSqTail);
  if (tail - head >= sq_cap_) {
    mem_.atomic_store_u32(kSqDropped, mem_.atomic_load_u32(kSqDropped) + 1);
    return Push::kFull;
  }
  const std::uint64_t off = sqe_off(sq_cap_, tail & (sq_cap_ - 1));
  mem_.store<std::uint32_t>(off, static_cast<std::uint32_t>(e.op));
  mem_.store<std::int32_t>(off + 4, e.fd);
  mem_.store<std::uint64_t>(off + 8, e.user_data);
  for (std::size_t i = 0; i < 4; ++i) {
    mem_.store<std::uint64_t>(off + 16 + i * 8, e.a[i]);
  }
  mem_.store<std::uint32_t>(off + 48, e.ncaps);
  if (e.op == UringOp::kRecycle) {
    // Tokens are data, not capabilities: the payload granules carry them
    // tag-free (and the stores clear any stale tags from a previous lap).
    for (std::size_t i = 0; i < FfUringSqe::kMaxTokens; ++i) {
      mem_.store<std::uint64_t>(off + kSqePayloadOff + i * 8, e.tokens[i]);
    }
  } else {
    for (std::uint32_t i = 0; i < e.ncaps && i < FfUringSqe::kMaxCaps; ++i) {
      mem_.store_cap(off + kSqePayloadOff + i * 16u, e.caps[i]);
    }
  }
  mem_.atomic_store_u32(kSqTail, tail + 1);  // release: payload first
  const bool was_empty = head == tail;
  const bool parked = mem_.atomic_load_u32(kStackState) == kStackParked;
  return was_empty && parked ? Push::kDoorbell : Push::kQueued;
}

std::size_t FfUring::cq_pop(std::span<FfUringCqe> out) {
  const std::uint32_t tail = mem_.atomic_load_u32(kCqTail);  // acquire
  std::uint32_t head = mem_.atomic_load_u32(kCqHead);
  std::size_t n = 0;
  while (n < out.size() && head != tail) {
    const std::uint64_t off = cqe_off(sq_cap_, head & (cq_cap_ - 1));
    FfUringCqe& c = out[n];
    c.user_data = mem_.load<std::uint64_t>(off);
    c.result = mem_.load<std::int64_t>(off + 8);
    c.op = static_cast<UringOp>(mem_.load<std::uint32_t>(off + 16));
    c.flags = mem_.load<std::uint32_t>(off + 20);
    c.aux0 = mem_.load<std::uint64_t>(off + 24);
    c.aux1 = mem_.load<std::uint64_t>(off + 32);
    // A loan CQE (any non-negative result without the EOF flag) carries
    // the loan capability — including zero-length datagram loans. A zc TX
    // grant CQE (OP_ZC_ALLOC) carries the writable data-room capability
    // the same way.
    const bool carries_cap =
        (c.op == UringOp::kZcRecv || c.op == UringOp::kZcAlloc) &&
        c.result >= 0 && (c.flags & kCqeEof) == 0 && c.aux0 != 0;
    c.cap = carries_cap ? mem_.load_cap(off + kCqeCapOff)
                        : machine::CapView{};
    ++head;
    ++n;
  }
  if (n > 0) mem_.atomic_store_u32(kCqHead, head);  // release the slots
  return n;
}

std::uint32_t FfUring::sq_pending() const {
  return mem_.atomic_load_u32(kSqTail) - mem_.atomic_load_u32(kSqHead);
}

std::uint32_t FfUring::cq_overflows() const {
  return mem_.atomic_load_u32(kCqOverflow);
}

bool FfUring::stack_parked() const {
  return mem_.atomic_load_u32(kStackState) == kStackParked;
}

}  // namespace cherinet::fstack
