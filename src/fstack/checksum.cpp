#include "fstack/checksum.hpp"

#include <cstdio>

namespace cherinet::fstack {

std::uint32_t checksum_partial(std::span<const std::byte> data,
                               std::uint32_t sum) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) |
           static_cast<std::uint32_t>(data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;  // odd trailing byte
  }
  return sum;
}

std::uint32_t checksum_pseudo(Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto,
                              std::uint16_t l4_len,
                              std::uint32_t sum) noexcept {
  sum += (src.value >> 16) + (src.value & 0xFFFF);
  sum += (dst.value >> 16) + (dst.value & 0xFFFF);
  sum += proto;
  sum += l4_len;
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t sum) noexcept {
  while ((sum >> 16) != 0) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::uint32_t checksum_cap_partial(const machine::CapView& v,
                                   std::uint64_t off, std::size_t len,
                                   std::uint32_t sum) {
  // 8 bytes per capability-checked load: each little-endian 16-bit half
  // holds (even byte, odd byte) of a big-endian word — byte-swap and add.
  std::size_t i = 0;
  std::uint64_t acc = 0;
  for (; i + 8 <= len; i += 8) {
    const std::uint64_t w = v.load<std::uint64_t>(off + i);
    // Byte-swap each 16-bit half into big-endian word order, then fold the
    // swapped word at its 32-bit boundary before accumulating: 2^16 == 1
    // (mod 65535), so any 16-bit-aligned fold preserves the one's-
    // complement value while keeping the accumulator overflow-free.
    const std::uint64_t sw = ((w & 0x00FF00FF00FF00FFull) << 8) |
                             ((w >> 8) & 0x00FF00FF00FF00FFull);
    acc += (sw & 0xFFFFFFFFull) + (sw >> 32);
  }
  acc = (acc & 0xFFFFFFFFull) + (acc >> 32);
  sum += static_cast<std::uint32_t>((acc & 0xFFFFull) +
                                    ((acc >> 16) & 0xFFFFull) + (acc >> 32));
  for (; i + 1 < len; i += 2) {
    sum += (static_cast<std::uint32_t>(v.load<std::uint8_t>(off + i)) << 8) |
           static_cast<std::uint32_t>(v.load<std::uint8_t>(off + i + 1));
  }
  if (i < len) {
    sum += static_cast<std::uint32_t>(v.load<std::uint8_t>(off + i)) << 8;
  }
  return sum;
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xFF,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

}  // namespace cherinet::fstack
