#include "fstack/checksum.hpp"

#include <cstdio>

namespace cherinet::fstack {

std::uint32_t checksum_partial(std::span<const std::byte> data,
                               std::uint32_t sum) noexcept {
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += (static_cast<std::uint32_t>(data[i]) << 8) |
           static_cast<std::uint32_t>(data[i + 1]);
  }
  if (i < data.size()) {
    sum += static_cast<std::uint32_t>(data[i]) << 8;  // odd trailing byte
  }
  return sum;
}

std::uint32_t checksum_pseudo(Ipv4Addr src, Ipv4Addr dst, std::uint8_t proto,
                              std::uint16_t l4_len,
                              std::uint32_t sum) noexcept {
  sum += (src.value >> 16) + (src.value & 0xFFFF);
  sum += (dst.value >> 16) + (dst.value & 0xFFFF);
  sum += proto;
  sum += l4_len;
  return sum;
}

std::uint16_t checksum_finish(std::uint32_t sum) noexcept {
  while ((sum >> 16) != 0) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum & 0xFFFF);
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (value >> 24) & 0xFF,
                (value >> 16) & 0xFF, (value >> 8) & 0xFF, value & 0xFF);
  return buf;
}

}  // namespace cherinet::fstack
