// Wire-format protocol headers: parse/serialize against host scratch bytes.
//
// The stack copies header regions out of capability-checked mbuf views into
// small stack scratch buffers, parses them here, and serializes responses
// the same way — so every byte that came off the wire crossed a capability
// check before interpretation.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "fstack/inet.hpp"
#include "nic/mac.hpp"

namespace cherinet::fstack {

inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeArp = 0x0806;

inline constexpr std::uint8_t kIpProtoIcmp = 1;
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

// --------------------------------------------------------------------------
struct EtherHeader {
  static constexpr std::size_t kSize = 14;
  nic::MacAddr dst;
  nic::MacAddr src;
  std::uint16_t ethertype = 0;

  [[nodiscard]] static std::optional<EtherHeader> parse(
      std::span<const std::byte> b) noexcept;
  void serialize(std::span<std::byte> b) const noexcept;
};

// --------------------------------------------------------------------------
struct ArpHeader {
  static constexpr std::size_t kSize = 28;
  static constexpr std::uint16_t kOpRequest = 1;
  static constexpr std::uint16_t kOpReply = 2;

  std::uint16_t oper = 0;
  nic::MacAddr sha;
  Ipv4Addr spa;
  nic::MacAddr tha;
  Ipv4Addr tpa;

  [[nodiscard]] static std::optional<ArpHeader> parse(
      std::span<const std::byte> b) noexcept;
  void serialize(std::span<std::byte> b) const noexcept;
};

// --------------------------------------------------------------------------
struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // without options
  static constexpr std::uint16_t kFlagDF = 0x4000;
  static constexpr std::uint16_t kFlagMF = 0x2000;

  std::uint8_t ihl = 5;  // 32-bit words
  std::uint8_t tos = 0;
  std::uint16_t total_len = 0;
  std::uint16_t id = 0;
  std::uint16_t flags_frag = 0;  // flags in top 3 bits, offset in low 13
  std::uint8_t ttl = 64;
  std::uint8_t proto = 0;
  std::uint16_t checksum = 0;
  Ipv4Addr src;
  Ipv4Addr dst;

  [[nodiscard]] std::uint16_t frag_offset_bytes() const noexcept {
    return static_cast<std::uint16_t>((flags_frag & 0x1FFF) * 8);
  }
  [[nodiscard]] bool more_fragments() const noexcept {
    return (flags_frag & kFlagMF) != 0;
  }
  [[nodiscard]] std::size_t header_len() const noexcept {
    return std::size_t{ihl} * 4;
  }

  /// Parses the header; `verify_checksum` = false skips the software sum
  /// (the RX path passes false when the device's descriptor write-back
  /// already carries an IP checksum verdict — see the offload ABI in
  /// updk/mbuf.hpp).
  [[nodiscard]] static std::optional<Ipv4Header> parse(
      std::span<const std::byte> b, bool verify_checksum = true) noexcept;
  /// Serializes with a freshly computed checksum.
  void serialize(std::span<std::byte> b) const noexcept;
};

// --------------------------------------------------------------------------
struct IcmpHeader {
  static constexpr std::size_t kSize = 8;
  static constexpr std::uint8_t kEchoReply = 0;
  static constexpr std::uint8_t kEchoRequest = 8;

  std::uint8_t type = 0;
  std::uint8_t code = 0;
  std::uint16_t checksum = 0;
  std::uint16_t id = 0;
  std::uint16_t seq = 0;

  [[nodiscard]] static std::optional<IcmpHeader> parse(
      std::span<const std::byte> b) noexcept;
  void serialize(std::span<std::byte> b) const noexcept;
};

// --------------------------------------------------------------------------
struct UdpHeader {
  static constexpr std::size_t kSize = 8;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
  std::uint16_t checksum = 0;

  [[nodiscard]] static std::optional<UdpHeader> parse(
      std::span<const std::byte> b) noexcept;
  void serialize(std::span<std::byte> b) const noexcept;
};

// --------------------------------------------------------------------------
namespace tcpflag {
inline constexpr std::uint8_t kFin = 0x01;
inline constexpr std::uint8_t kSyn = 0x02;
inline constexpr std::uint8_t kRst = 0x04;
inline constexpr std::uint8_t kPsh = 0x08;
inline constexpr std::uint8_t kAck = 0x10;
}  // namespace tcpflag

/// Parsed TCP options the stack understands (MSS, window scale, timestamps).
struct TcpOptions {
  std::optional<std::uint16_t> mss;
  std::optional<std::uint8_t> wscale;
  std::optional<std::pair<std::uint32_t, std::uint32_t>> timestamps;  // val,ecr

  /// Encoded size (multiple of 4) for a SYN / non-SYN segment.
  [[nodiscard]] std::size_t encoded_size() const noexcept;
  /// Append to `b`; returns bytes written (padded with NOPs/END).
  std::size_t serialize(std::span<std::byte> b) const noexcept;
  [[nodiscard]] static TcpOptions parse(std::span<const std::byte> b) noexcept;
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // without options

  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t data_off = 5;  // 32-bit words incl. options
  std::uint8_t flags = 0;
  std::uint16_t window = 0;
  std::uint16_t checksum = 0;
  std::uint16_t urgent = 0;

  [[nodiscard]] std::size_t header_len() const noexcept {
    return std::size_t{data_off} * 4;
  }
  [[nodiscard]] bool has(std::uint8_t f) const noexcept {
    return (flags & f) != 0;
  }

  [[nodiscard]] static std::optional<TcpHeader> parse(
      std::span<const std::byte> b) noexcept;
  void serialize(std::span<std::byte> b) const noexcept;  // checksum = 0
};

}  // namespace cherinet::fstack
