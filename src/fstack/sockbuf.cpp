#include "fstack/sockbuf.hpp"

#include <algorithm>
#include <stdexcept>

#include "fstack/checksum.hpp"

namespace cherinet::fstack {

namespace {
constexpr std::size_t kScratch = 2048;
}

std::size_t SockBuf::write_from(const machine::CapView& src,
                                std::size_t src_off, std::size_t n,
                                std::uint32_t* csum) {
  n = std::min(n, free());
  std::byte scratch[kScratch];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t tail = (head_ + used_) % cap_;
    const std::size_t contig = std::min(n - done, cap_ - tail);
    const std::size_t chunk = std::min(contig, sizeof scratch);
    src.read(src_off + done, std::span<std::byte>{scratch, chunk});
    if (csum != nullptr) {
      *csum = checksum_partial_at({scratch, chunk}, done, *csum);
    }
    mem_.write(tail, std::span<const std::byte>{scratch, chunk});
    used_ += chunk;
    done += chunk;
  }
  return done;
}

std::size_t SockBuf::phys_spans(std::size_t off, std::size_t n,
                                PhysSpan out[2]) const {
  if (off + n > used_) {
    throw std::out_of_range("SockBuf::phys_spans beyond buffered data");
  }
  if (n == 0) return 0;
  const std::size_t start = (head_ + off) % cap_;
  const std::size_t contig = std::min(n, cap_ - start);
  out[0] = {start, contig};
  if (contig == n) return 1;
  out[1] = {0, n - contig};
  return 2;
}

std::size_t SockBuf::writev_from(std::span<const FfIovec> iov) {
  std::size_t total = 0;
  for (const FfIovec& e : iov) {
    if (e.len == 0) continue;
    const std::size_t got = write_from(e.buf, 0, e.len);
    total += got;
    if (got < e.len) break;  // ring full mid-batch: short count
  }
  return total;
}

std::size_t SockBuf::write_bytes(std::span<const std::byte> in) {
  const std::size_t n = std::min(in.size(), free());
  std::size_t done = 0;
  while (done < n) {
    const std::size_t tail = (head_ + used_) % cap_;
    const std::size_t chunk = std::min(n - done, cap_ - tail);
    mem_.write(tail, in.subspan(done, chunk));
    used_ += chunk;
    done += chunk;
  }
  return done;
}

void SockBuf::peek(std::size_t off, std::span<std::byte> out) const {
  if (off + out.size() > used_) {
    throw std::out_of_range("SockBuf::peek beyond buffered data");
  }
  std::size_t done = 0;
  while (done < out.size()) {
    const std::size_t pos = (head_ + off + done) % cap_;
    const std::size_t chunk = std::min(out.size() - done, cap_ - pos);
    mem_.read(pos, out.subspan(done, chunk));
    done += chunk;
  }
}

std::size_t SockBuf::read_into(const machine::CapView& dst,
                               std::size_t dst_off, std::size_t n) {
  n = std::min(n, used_);
  std::byte scratch[kScratch];
  std::size_t done = 0;
  while (done < n) {
    const std::size_t contig = std::min(n - done, cap_ - head_);
    const std::size_t chunk = std::min(contig, sizeof scratch);
    mem_.read(head_, std::span<std::byte>{scratch, chunk});
    dst.write(dst_off + done, std::span<const std::byte>{scratch, chunk});
    head_ = (head_ + chunk) % cap_;
    used_ -= chunk;
    done += chunk;
  }
  return done;
}

void SockBuf::consume(std::size_t n) {
  if (n > used_) {
    throw std::out_of_range("SockBuf::consume beyond buffered data");
  }
  head_ = (head_ + n) % cap_;
  used_ -= n;
}

}  // namespace cherinet::fstack
