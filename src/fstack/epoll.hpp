// F-Stack epoll: the event mechanism the paper ported iperf3 onto
// ("we replaced the select function with the epoll mechanism, which adapts
// better to F-Stack", §III-B).
//
// Level-triggered readiness over the stack's socket table. Waiting never
// blocks — F-Stack applications run inside (or against) the polling main
// loop, so ff_epoll_wait(timeout=0) is the idiomatic call.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>

#include "machine/cap_view.hpp"

namespace cherinet::fstack {

inline constexpr std::uint32_t kEpollIn = 0x1;
inline constexpr std::uint32_t kEpollOut = 0x4;
inline constexpr std::uint32_t kEpollErr = 0x8;
inline constexpr std::uint32_t kEpollHup = 0x10;

struct FfEpollEvent {
  std::uint32_t events = 0;
  std::uint64_t data = 0;  // user cookie (typically the fd)
};

enum class EpollOp : std::uint8_t { kAdd = 1, kDel = 2, kMod = 3 };

class EpollInstance {
 public:
  struct Interest {
    std::uint32_t events = 0;
    std::uint64_t data = 0;
  };

  int ctl(EpollOp op, int fd, std::uint32_t events, std::uint64_t data);
  [[nodiscard]] const std::map<int, Interest>& interest() const noexcept {
    return interest_;
  }

  // ---- multishot arming (see event_ring.hpp for the ring contract) ----
  // While armed, the owning stack publishes readiness-CHANGE events into
  // the caller-provided capability ring every main-loop iteration; the
  // application consumes them without crossing back in. Delta-triggered:
  // an fd re-reports only after its ready mask changes (drain fully, like
  // io_uring multishot poll).

  /// Arm (or re-arm) with a writable ring of `capacity` event slots.
  void arm_multishot(machine::CapView ring, std::uint32_t capacity);
  /// Arm (or re-arm) with a completion sink instead of an event ring — the
  /// ff_uring OP_EPOLL_ARM path: each publication calls sink(ready, data);
  /// a false return means the sink deferred (full CQ) and the event stays
  /// unpublished, to retry on a later iteration. The same mask/generation
  /// dedup state drives both delivery shapes, so the edge-trigger
  /// lost-wakeup fix of PR 2 cannot diverge between them.
  void arm_multishot_sink(
      std::function<bool(std::uint32_t, std::uint64_t)> sink);
  void disarm_multishot();
  [[nodiscard]] bool multishot_armed() const noexcept {
    return ring_.has_value() || sink_ != nullptr;
  }

  /// Publish `ready` for `fd` if the mask changed OR new readiness
  /// activity happened since the last publication (`gen` is a monotonic
  /// per-fd activity counter: bytes delivered, connections queued, …).
  /// Without the generation, a consumer that drains to -EAGAIN right
  /// before more data lands would never see another event — the classic
  /// edge-trigger lost wakeup. Returns true when an event was written
  /// (false: no change, empty mask, or ring full — counted in the ring's
  /// overflow word).
  bool publish(int fd, std::uint32_t ready, std::uint64_t gen);

 private:
  struct Published {
    std::uint32_t mask = 0;
    std::uint64_t gen = 0;
  };

  std::map<int, Interest> interest_;
  std::optional<machine::CapView> ring_;
  std::uint32_t ring_capacity_ = 0;
  std::function<bool(std::uint32_t, std::uint64_t)> sink_;
  std::map<int, Published> last_;
};

}  // namespace cherinet::fstack
