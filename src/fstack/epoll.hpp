// F-Stack epoll: the event mechanism the paper ported iperf3 onto
// ("we replaced the select function with the epoll mechanism, which adapts
// better to F-Stack", §III-B).
//
// Level-triggered readiness over the stack's socket table. Waiting never
// blocks — F-Stack applications run inside (or against) the polling main
// loop, so ff_epoll_wait(timeout=0) is the idiomatic call.
#pragma once

#include <cstdint>
#include <map>

namespace cherinet::fstack {

inline constexpr std::uint32_t kEpollIn = 0x1;
inline constexpr std::uint32_t kEpollOut = 0x4;
inline constexpr std::uint32_t kEpollErr = 0x8;
inline constexpr std::uint32_t kEpollHup = 0x10;

struct FfEpollEvent {
  std::uint32_t events = 0;
  std::uint64_t data = 0;  // user cookie (typically the fd)
};

enum class EpollOp : std::uint8_t { kAdd = 1, kDel = 2, kMod = 3 };

class EpollInstance {
 public:
  struct Interest {
    std::uint32_t events = 0;
    std::uint64_t data = 0;
  };

  int ctl(EpollOp op, int fd, std::uint32_t events, std::uint64_t data);
  [[nodiscard]] const std::map<int, Interest>& interest() const noexcept {
    return interest_;
  }

 private:
  std::map<int, Interest> interest_;
};

}  // namespace cherinet::fstack
