// TCP timers: retransmission with exponential backoff (RFC 6298 §5),
// delayed ACK, and zero-window persist probing.
#include <algorithm>
#include <cerrno>

#include "fstack/tcp_pcb.hpp"

namespace cherinet::fstack {

bool TcpPcb::fire_rexmit(sim::Ns now) {
  (void)now;
  rexmit_deadline_.reset();

  if (++rexmit_shift_ > cfg_.max_rexmit) {
    error_ = ETIMEDOUT;
    set_state(TcpState::kClosed);
    snd_.release_all();  // giving up: the retained zc TX refs go back too
    return true;
  }
  rto_ = std::min(rto_ * 2, cfg_.max_rto);  // backoff (RFC 6298 §5.5)
  rtt_timing_ = false;                      // Karn: never time retransmits
  counters_.rto_expirations++;

  if (state_ == TcpState::kSynSent) {
    send_segment(iss_, 0, 0, tcpflag::kSyn);
    counters_.rexmits++;
    arm_rexmit();
    return true;
  }
  if (state_ == TcpState::kSynReceived) {
    send_segment(iss_, 0, 0, tcpflag::kSyn | tcpflag::kAck);
    counters_.rexmits++;
    arm_rexmit();
    return true;
  }

  const std::uint32_t outstanding =
      snd_nxt_ - snd_una_ - ((fin_sent_ && !fin_acked_) ? 1 : 0);
  if (outstanding == 0 && !(fin_sent_ && !fin_acked_)) {
    return false;  // spurious: everything got acked meanwhile
  }

  // Loss response (RFC 5681 §3.1): collapse cwnd, halve ssthresh.
  const std::uint32_t flight = snd_nxt_ - snd_una_;
  ssthresh_ = std::max(flight / 2, 2u * mss_eff_);
  cwnd_ = mss_eff_;
  in_recovery_ = false;
  dupacks_ = 0;

  const std::size_t n =
      std::min<std::size_t>({static_cast<std::size_t>(outstanding),
                             snd_.used(), mss_eff_});
  std::uint8_t flags = tcpflag::kAck;
  // If this retransmission reaches the FIN, resend it too.
  if (fin_sent_ && !fin_acked_ && n == outstanding) flags |= tcpflag::kFin;
  send_segment(snd_una_, 0, n, flags);
  counters_.rexmits++;
  arm_rexmit();
  return true;
}

bool TcpPcb::fire_delack(sim::Ns) {
  delack_deadline_.reset();
  if (!ack_pending_) return false;
  return send_control(tcpflag::kAck);
}

bool TcpPcb::fire_ack_flush(sim::Ns now) {
  if (!ack_flush_deadline_ || now < *ack_flush_deadline_) return false;
  ack_flush_deadline_.reset();
  if (!ack_pending_) return false;
  return send_control(tcpflag::kAck);
}

bool TcpPcb::fire_persist(sim::Ns now) {
  persist_deadline_.reset();
  if (snd_wnd_ != 0) {
    persist_shift_ = 0;
    return output();
  }
  const std::uint32_t offset = snd_nxt_ - snd_una_;
  if (snd_.used() <= offset) return false;

  // Probe with one byte beyond the closed window.
  if (send_segment(snd_nxt_, offset, 1, tcpflag::kAck)) {
    snd_nxt_ += 1;
    arm_rexmit();
  }
  persist_shift_ = std::min(persist_shift_ + 1, 6u);
  persist_deadline_ = now + cfg_.persist_base * (1u << persist_shift_);
  return true;
}

bool TcpPcb::fire_keepalive(sim::Ns now) {
  keepalive_deadline_.reset();
  if (!cfg_.keepalive_enabled || state_ != TcpState::kEstablished) {
    return false;
  }
  // Lazy arming: traffic since the deadline was set only stamped the
  // activity clock. If the connection was not truly idle for a full
  // keepalive_idle window, re-arm relative to the last activity and skip
  // the probe — the deadline moves once per idle window, not per segment.
  if (keepalive_probes_sent_ == 0 &&
      now < keepalive_last_activity_ + cfg_.keepalive_idle) {
    keepalive_deadline_ = keepalive_last_activity_ + cfg_.keepalive_idle;
    return true;  // deadline changed: the caller re-syncs the wheel
  }
  if (keepalive_probes_sent_ >= cfg_.keepalive_probes) {
    error_ = ETIMEDOUT;
    set_state(TcpState::kClosed);
    snd_.release_all();
    return true;
  }
  ++keepalive_probes_sent_;
  // Probe one byte below the window (seq = snd_una - 1, no payload): the
  // peer's acceptability check rejects the stale sequence and answers with
  // a bare ACK — the liveness signal that resets the idle timer on input.
  send_segment(snd_una_ - 1, 0, 0, tcpflag::kAck);
  keepalive_deadline_ = now + cfg_.keepalive_intvl;
  return true;
}

}  // namespace cherinet::fstack
