// Socket objects and the fd table.
#pragma once

#include <memory>
#include <vector>

#include "fstack/epoll.hpp"
#include "fstack/tcp_pcb.hpp"
#include "fstack/udp.hpp"

namespace cherinet::fstack {

enum class SockKind : std::uint8_t { kTcp, kUdp, kEpoll };

struct Socket {
  int fd = -1;
  SockKind kind = SockKind::kTcp;
  TcpPcb* pcb = nullptr;                  // kTcp (owned by the stack maps)
  std::unique_ptr<UdpPcb> udp;            // kUdp
  std::unique_ptr<EpollInstance> epoll;   // kEpoll
  bool bound = false;
  bool listening = false;
  /// QoS traffic class (0 = default/bulk; see qos.hpp). TCP keeps the
  /// authoritative copy on the PCB so pure-protocol emissions (ACKs,
  /// retransmits) classify too; this mirror covers UDP and zc paths.
  std::uint8_t tclass = 0;
  /// Owning tenant (0 = untenanted; see tenant.hpp). Mirrors tclass: the
  /// PCB keeps the authoritative copy for TCP so protocol-only emissions
  /// attribute their parked/pinned buffers too.
  int tenant = 0;
  Ipv4Addr local_ip{};
  std::uint16_t local_port = 0;
};

/// fd allocation starting at 3 (F-Stack fds are separate from host fds).
class SocketTable {
 public:
  static constexpr int kFirstFd = 3;

  explicit SocketTable(std::size_t max_sockets) : max_(max_sockets) {}

  /// Allocate a socket; returns nullptr when the table is full.
  Socket* create(SockKind kind);
  [[nodiscard]] Socket* get(int fd);
  [[nodiscard]] const Socket* get(int fd) const;
  /// Release the fd slot (the caller has already torn down protocol state).
  void release(int fd);
  [[nodiscard]] std::size_t open_count() const noexcept { return open_; }

  /// Iterate live sockets.
  template <typename F>
  void for_each(F&& f) {
    for (auto& s : slots_) {
      if (s) f(*s);
    }
  }

 private:
  std::size_t max_;
  std::size_t open_ = 0;
  std::vector<std::unique_ptr<Socket>> slots_;
};

}  // namespace cherinet::fstack
