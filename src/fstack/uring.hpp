// FfUring: the unified compartment-boundary ring — one submission queue and
// one completion queue of capability-carrying entries per socket group.
//
// PRs 1-2 grew three separate amortization channels across the compartment
// boundary: SyscallBatch envelopes (one trampoline crossing per batch), the
// multishot epoll event ring (zero crossings per wait), and the zc loan /
// recycle token calls (one sealed-entry crossing per burst). The paper's
// cost model says every one of those crossings has the same fixed price
// (~125 ns trampoline, Fig. 4; sealed entry + stack-mutex acquisition,
// Fig. 5/6) — so v3 converges them into ONE io_uring-style pair of SPSC
// capability rings armed by a single sealed-entry crossing:
//
//   * the application produces SQEs (opcode + fd + up to 8 exactly-bounded
//     iovec capabilities or zc tokens) with plain capability stores;
//   * the stack's main loop drains the SQ every iteration, validates the
//     whole pending window in one sweep (amortized exactly like
//     Trampoline::invoke_batch), executes, and produces CQEs (result +
//     loan capability / accepted fd / readiness payload);
//   * in steady state NO crossing happens per operation. The only crossing
//     after arm time is the DOORBELL: when the app pushes into an empty SQ
//     while the stack has parked (header word `stack_state` == parked), it
//     makes one sealed-entry doorbell call to kick a drain. A polling
//     stack picks new SQEs up on its next iteration with no help.
//
// Ring memory is application-owned: the arming crossing delegates one
// bounded RW capability over the whole region to the stack, which validates
// it once (a bad grant faults at arm time, not mid-drain). Payload
// capabilities cross as REAL tagged stores into the ring granules, so a
// data overwrite or a forged entry clears the tag and the drain sweep
// answers with a per-entry -EINVAL instead of smuggled authority — the
// rest of the sweep is unaffected.
//
// Layout (little-endian host order, byte offsets; capability granules are
// 16-byte aligned because the header and both strides are multiples of 16
// and heap allocations are granule-aligned):
//
//   header (64 bytes)
//     [0]  u32 sq_head     — SQ consumer cursor (stack-owned)
//     [4]  u32 sq_tail     — SQ producer cursor (app-owned)
//     [8]  u32 cq_head     — CQ consumer cursor (app-owned)
//     [12] u32 cq_tail     — CQ producer cursor (stack-owned)
//     [16] u32 sq_capacity — entries (power of two, written at init)
//     [20] u32 cq_capacity — entries (power of two, written at init)
//     [24] u32 cq_overflow — completions the stack had to DEFER because
//          the CQ was full. Deferred work is retried (the SQE stays
//          queued; multishot publications re-derive) — never dropped.
//     [28] u32 sq_dropped  — app-side push failures (diagnostic)
//     [32] u32 stack_state — kStackPolling / kStackParked (doorbell rule)
//     [36..63] reserved
//   SQ: sq_capacity * 192-byte entries
//     [0]  u32 opcode      [4]  i32 fd        [8] u64 user_data
//     [16] u64 a0..a3      [48] u32 ncaps     [52..63] reserved
//     [64] payload: 8 x 16-byte capability granules, which OP_RECYCLE
//          reuses as 16 x u64 zc-token slots (tokens are data, not caps)
//   CQ: cq_capacity * 64-byte entries
//     [0]  u64 user_data   [8]  i64 result
//     [16] u32 op          [20] u32 flags (kCqeMore: more CQEs follow for
//                               the same submission / multishot arm)
//     [24] u64 aux0        [32] u64 aux1      [40..47] reserved
//     [48] one 16-byte capability granule (zc loan / sendable payload)
//
// Ownership and lifetime:
//   * SQE iovec capabilities belong to the application; the stack uses
//     them only inside the drain that consumes the SQE (bytes are queued
//     into stack buffers before the CQE posts), so the app may reuse the
//     buffer as soon as it reaps the CQE.
//   * CQE loan capabilities (OP_ZC_RECV) follow the PR-2 loan contract:
//     exactly-bounded, read-only, charged against the receive window until
//     returned through OP_RECYCLE (or the classic ff_zc_recycle shim).
//   * The ring region itself must outlive the attachment; detach (or stack
//     destruction) ends the stack's use of the delegated capability.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <span>

#include "fstack/api_types.hpp"
#include "machine/cap_view.hpp"

namespace cherinet::fstack {

/// SQE opcodes — every batch verb of API v2 becomes a ring operation (the
/// v2 calls remain as thin shims; see the v2->v3 table in api.hpp).
enum class UringOp : std::uint32_t {
  kNop = 0,              // completes immediately (tests, fences)
  kWritev = 1,           // ncaps iovec caps -> sock_writev
  kSendmsgBatch = 2,     // ncaps datagram caps to (a0=ip, a1=port) via UDP
  kZcSend = 3,           // a0=zc token, a1=len, a2=ip, a3=port (UDP only;
                         //   a TCP fd ignores a2/a3 — the slice joins the
                         //   send queue as a retained mbuf reference held
                         //   until cumulative ACK)
  kZcRecv = 4,           // a0=max loans (<=8); one CQE per loan. UDP fds:
                         //   a1=burst timeout ns (recvmmsg-style — the
                         //   burst coalesces until a0 datagrams queue or
                         //   the oldest has waited a1, then short-counts)
  kRecycle = 5,          // a0=token count (<=16); tokens in payload slots
  kAcceptMultishot = 6,  // arm: every accepted conn on fd posts a CQE
  kEpollArm = 7,         // arm: readiness of epfd's interest set posts CQEs
  kZcAlloc = 8,          // a0=buffers (<=8), a1=len each; one CQE per
                         //   reservation: aux0=token, cap=writable bounded
                         //   view into the mbuf data room (zc TX without a
                         //   per-alloc crossing — io_uring's registered-
                         //   buffer analogue)
  // --- v5: ring-native control plane. A churn-heavy app crosses the
  // --- boundary once at attach; connects, closes, and readiness re-arms
  // --- all ride the rings from then on.
  kConnect = 9,          // a0=packed peer (uring_pack_addr); the CQE posts
                         //   when the handshake RESOLVES: result 0 on
                         //   ESTABLISHED, -errno (ECONNREFUSED/ETIMEDOUT)
                         //   on failure, aux0=fd. No -EINPROGRESS CQE.
  kClose = 10,           // graceful close of fd; result is the sock_close
                         //   verdict, aux0=fd. FIN rides the drain's one
                         //   driver burst — no per-close crossing.
  kEpollCtl = 11,        // fd=epfd, a0=EpollOp (1 add / 2 del / 3 mod),
                         //   a1=target fd, a2=events, a3=data; immediate
                         //   verdict CQE
  // --- v7: classed QoS TX scheduling (see qos.hpp).
  kSetClass = 12,        // a0=traffic class (0..kQosClasses-1) for fd;
                         //   immediate verdict CQE. On a listener the class
                         //   propagates to subsequently accepted children.
};

/// CQE flags.
inline constexpr std::uint32_t kCqeMore = 0x1;  // multishot: arm stays live
/// OP_ZC_RECV stream end. EOF gets its own flag (not just result == 0)
/// because a zero-length datagram is a LEGAL loan: its CQE carries
/// result == 0 WITH a token in aux0 that still must be recycled —
/// conflating the two would leak the window-charged loan.
inline constexpr std::uint32_t kCqeEof = 0x2;

/// Header stack_state values (the doorbell rule word).
inline constexpr std::uint32_t kStackPolling = 0;
inline constexpr std::uint32_t kStackParked = 1;

/// Application-side submission image. `caps` carries up to kMaxCaps
/// exactly-bounded buffer views (the length IS the capability's bounds);
/// `tokens` is the OP_RECYCLE payload (zc tokens are scalars, not caps).
struct FfUringSqe {
  static constexpr std::size_t kMaxCaps = 8;
  static constexpr std::size_t kMaxTokens = 16;

  UringOp op = UringOp::kNop;
  std::int32_t fd = -1;
  std::uint64_t user_data = 0;
  std::array<std::uint64_t, 4> a{};
  std::uint32_t ncaps = 0;
  std::array<machine::CapView, kMaxCaps> caps{};
  std::array<std::uint64_t, kMaxTokens> tokens{};
};

/// Application-side completion image.
struct FfUringCqe {
  std::uint64_t user_data = 0;
  std::int64_t result = 0;
  UringOp op = UringOp::kNop;
  std::uint32_t flags = 0;
  std::uint64_t aux0 = 0;
  std::uint64_t aux1 = 0;
  machine::CapView cap;  // zc loan payload (OP_ZC_RECV)
};

/// Pack/unpack a peer address into a CQE aux word.
[[nodiscard]] inline std::uint64_t uring_pack_addr(
    const FfSockAddrIn& a) noexcept {
  return (static_cast<std::uint64_t>(a.ip.value) << 16) | a.port;
}
[[nodiscard]] inline FfSockAddrIn uring_unpack_addr(std::uint64_t v) noexcept {
  return {Ipv4Addr{static_cast<std::uint32_t>(v >> 16)},
          static_cast<std::uint16_t>(v & 0xFFFF)};
}

class FfUring {
 public:
  // ---- shared layout constants (stack drain + app side use the same) ----
  static constexpr std::uint32_t kHeaderBytes = 64;
  static constexpr std::uint32_t kSqeBytes = 192;
  static constexpr std::uint32_t kCqeBytes = 64;
  static constexpr std::uint32_t kSqePayloadOff = 64;  // within an SQE
  static constexpr std::uint32_t kCqeCapOff = 48;      // within a CQE

  // Header word offsets.
  static constexpr std::uint64_t kSqHead = 0;
  static constexpr std::uint64_t kSqTail = 4;
  static constexpr std::uint64_t kCqHead = 8;
  static constexpr std::uint64_t kCqTail = 12;
  static constexpr std::uint64_t kSqCapacity = 16;
  static constexpr std::uint64_t kCqCapacity = 20;
  static constexpr std::uint64_t kCqOverflow = 24;
  static constexpr std::uint64_t kSqDropped = 28;
  static constexpr std::uint64_t kStackState = 32;

  [[nodiscard]] static constexpr std::size_t bytes_for(
      std::uint32_t sq_capacity, std::uint32_t cq_capacity) noexcept {
    return kHeaderBytes +
           static_cast<std::size_t>(sq_capacity) * kSqeBytes +
           static_cast<std::size_t>(cq_capacity) * kCqeBytes;
  }

  /// Power-of-two capacities only: the free-running u32 cursors map to
  /// slots with a mask, which stays continuous across index wraparound.
  [[nodiscard]] static constexpr bool valid_capacity(
      std::uint32_t capacity) noexcept {
    return capacity != 0 && (capacity & (capacity - 1)) == 0;
  }

  [[nodiscard]] static constexpr std::uint64_t sqe_off(
      std::uint32_t sq_capacity, std::uint32_t slot) noexcept {
    (void)sq_capacity;
    return kHeaderBytes + static_cast<std::uint64_t>(slot) * kSqeBytes;
  }
  [[nodiscard]] static constexpr std::uint64_t cqe_off(
      std::uint32_t sq_capacity, std::uint32_t slot) noexcept {
    return kHeaderBytes +
           static_cast<std::uint64_t>(sq_capacity) * kSqeBytes +
           static_cast<std::uint64_t>(slot) * kCqeBytes;
  }

  FfUring() = default;
  /// Wrap (and header-initialize) ring memory of at least
  /// bytes_for(sq_capacity, cq_capacity).
  FfUring(machine::CapView mem, std::uint32_t sq_capacity,
          std::uint32_t cq_capacity);

  [[nodiscard]] const machine::CapView& memory() const noexcept {
    return mem_;
  }
  [[nodiscard]] bool valid() const noexcept { return mem_.valid(); }
  [[nodiscard]] std::uint32_t sq_capacity() const noexcept { return sq_cap_; }
  [[nodiscard]] std::uint32_t cq_capacity() const noexcept { return cq_cap_; }

  enum class Push : std::uint8_t {
    kFull,      // SQ full: reap CQEs / let the stack drain, then retry
    kQueued,    // queued; the polling stack will pick it up, no crossing
    kDoorbell,  // queued into an EMPTY SQ while the stack is PARKED:
                // make the one doorbell crossing (uring_doorbell)
  };

  /// Produce one SQE (plain capability stores, no crossing). The return
  /// value implements the doorbell rule — kDoorbell only on the
  /// empty->non-empty transition while the stack reports itself parked.
  Push sq_push(const FfUringSqe& e);

  /// Consume up to out.size() completions — pure capability loads, no
  /// crossing. Returns the number popped.
  std::size_t cq_pop(std::span<FfUringCqe> out);

  /// Entries waiting in the SQ (app-side view).
  [[nodiscard]] std::uint32_t sq_pending() const;
  /// Completions the stack had to defer on a full CQ (retried, not lost).
  [[nodiscard]] std::uint32_t cq_overflows() const;
  [[nodiscard]] bool stack_parked() const;

 private:
  machine::CapView mem_;
  std::uint32_t sq_cap_ = 0;
  std::uint32_t cq_cap_ = 0;
};

/// Accumulates zc recycle tokens into OP_RECYCLE submissions. The add/flush
/// discipline guarantees the token array can NEVER overfill: an entry that
/// the SQ refuses goes out through the caller-provided synchronous fallback
/// (typically one classic ff_zc_recycle_batch crossing) instead of piling
/// up — loans are window-charged, so holding them is not an option.
class FfUringRecycler {
 public:
  using Fallback = std::function<void(std::span<const std::uint64_t>)>;

  FfUringRecycler() = default;
  FfUringRecycler(FfUring* ring, Fallback fallback)
      : ring_(ring), fallback_(std::move(fallback)) {
    sqe_.op = UringOp::kRecycle;
  }

  void add(std::uint64_t token) {
    sqe_.tokens[n_++] = token;
    if (n_ == FfUringSqe::kMaxTokens) flush();
  }
  /// Submit the pending batch through the ring (fallback when refused).
  void flush() {
    if (n_ == 0) return;
    sqe_.a[0] = n_;
    if (ring_->sq_push(sqe_) == FfUring::Push::kFull) {
      fallback_({sqe_.tokens.data(), n_});
    } else {
      ++ring_pushes_;
    }
    n_ = 0;
  }
  /// Return the pending batch synchronously, bypassing the ring — the
  /// teardown path, where a queued entry might never be drained.
  void flush_sync() {
    if (n_ == 0) return;
    fallback_({sqe_.tokens.data(), n_});
    n_ = 0;
  }
  [[nodiscard]] std::uint32_t pending() const noexcept { return n_; }
  /// OP_RECYCLE entries that went out through the ring (census bookkeeping).
  [[nodiscard]] std::uint64_t ring_pushes() const noexcept {
    return ring_pushes_;
  }

 private:
  FfUring* ring_ = nullptr;
  Fallback fallback_;
  FfUringSqe sqe_;
  std::uint32_t n_ = 0;
  std::uint64_t ring_pushes_ = 0;
};

/// The stall-based doorbell policy every ring consumer shares: a parked
/// stack wakes on its own heartbeat (and on every wire event), so the one
/// doorbell crossing is only worth making when submissions have genuinely
/// sat unclaimed — `threshold` progress-free turns with a non-empty SQ
/// while the stack reports itself parked.
class FfUringDoorbellPolicy {
 public:
  static constexpr std::uint32_t kDefaultStallTurns = 16;

  explicit FfUringDoorbellPolicy(
      std::uint32_t threshold = kDefaultStallTurns) noexcept
      : threshold_(threshold) {}

  /// Feed one turn's progress; true when the caller should cross now.
  bool should_ring(const FfUring& ring, bool progress) {
    if (progress) {
      stall_ = 0;
      return false;
    }
    if (++stall_ < threshold_ || ring.sq_pending() == 0 ||
        !ring.stack_parked()) {
      return false;
    }
    stall_ = 0;
    return true;
  }

 private:
  std::uint32_t threshold_;
  std::uint32_t stall_ = 0;
};

}  // namespace cherinet::fstack
