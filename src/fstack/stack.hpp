// FfStack: one F-Stack instance — the user-space TCP/IP stack bound to one
// DPDK-style port, driven by a polling main loop (paper §II-C/§III-B).
//
// Single-threaded by design: in Scenario 1 the application runs inside the
// loop's user callback; in Scenario 2 cross-compartment ff_* calls are
// serialized against the loop by the compartment mutex. All packet and
// socket-buffer memory lives in tagged memory behind bounded capabilities.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "fstack/api_types.hpp"
#include "fstack/qos.hpp"
#include "fstack/uring.hpp"
#include "fstack/arp.hpp"
#include "fstack/icmp.hpp"
#include "fstack/ipv4.hpp"
#include "fstack/socket.hpp"
#include "fstack/tenant.hpp"
#include "fstack/timer_wheel.hpp"
#include "machine/heap.hpp"
#include "updk/ethdev.hpp"
#include "updk/mempool.hpp"

namespace cherinet::fstack {

struct NetifConfig {
  Ipv4Addr ip{};
  Ipv4Addr netmask = Ipv4Addr{0xFFFFFF00};
  Ipv4Addr gateway{};
  std::uint16_t mtu = 1500;
};

struct StackConfig {
  NetifConfig netif;
  TcpConfig tcp;
  std::size_t max_sockets = 1024;
  std::uint64_t iss_seed = 0x9E3779B97F4A7C15ull;
  /// true  -> ff_write drives tcp_output inline (BSD sosend behaviour);
  /// false -> ff_write only queues into the send buffer and the main loop
  ///          emits segments (F-Stack's deferred model; what the paper's
  ///          ~125 ns ff_write measurements correspond to).
  bool inline_tcp_output = true;
};

class FfStack final : public TcpEnv {
 public:
  FfStack(StackConfig cfg, updk::EthDev* dev, updk::Mempool* pool,
          machine::CompartmentHeap* heap, sim::VirtualClock* clock);
  ~FfStack() override;

  // ---- main loop ----
  /// One polling iteration: RX burst -> input, due timers, pending output.
  /// Returns true if any work was done.
  bool run_once();
  /// Earliest future event (wire delivery or protocol timer).
  [[nodiscard]] std::optional<sim::Ns> next_deadline() const;

  // ---- socket operations (wrapped by the ff_* API) ----
  int sock_socket(SockKind kind);
  int sock_bind(int fd, Ipv4Addr ip, std::uint16_t port);
  int sock_listen(int fd, int backlog);
  int sock_accept(int fd, FourTuple* peer_out);
  int sock_connect(int fd, Ipv4Addr ip, std::uint16_t port);
  std::int64_t sock_write(int fd, const machine::CapView& buf, std::size_t n);
  std::int64_t sock_read(int fd, const machine::CapView& buf, std::size_t n);
  std::int64_t sock_sendto(int fd, const machine::CapView& buf, std::size_t n,
                           Ipv4Addr ip, std::uint16_t port);
  std::int64_t sock_recvfrom(int fd, const machine::CapView& buf,
                             std::size_t n, FourTuple* from_out);

  // ---- batch socket operations (API v2; see api.hpp migration table) ----
  // One bounds/permission validation sweep covers the whole batch and is
  // atomic: any invalid element faults before a byte is queued.
  std::int64_t sock_writev(int fd, std::span<const FfIovec> iov);
  std::int64_t sock_readv(int fd, std::span<const FfIovec> iov);
  std::int64_t sock_sendmsg_batch(int fd, std::span<FfMsg> msgs);
  std::int64_t sock_recvmsg_batch(int fd, std::span<FfMsg> msgs) {
    return sock_recvmsg_batch(fd, msgs, FfMsgBatchOpts{});
  }
  /// With opts.timeout_ns: coalesce until msgs.size() datagrams are queued
  /// or the oldest has waited the timeout (-EAGAIN meanwhile), then return
  /// the short count — both loan-mode and copy entries.
  std::int64_t sock_recvmsg_batch(int fd, std::span<FfMsg> msgs,
                                  const FfMsgBatchOpts& opts);

  // ---- zero-copy TX: payload written straight into an mbuf data room ----
  int sock_zc_alloc(std::size_t len, FfZcBuf* out);
  /// Submit a zc reservation. UDP: headers prepend in the mbuf headroom and
  /// the buffer goes to the driver. TCP (`ip`/`port` ignored): the slice
  /// joins the send queue as a retained mbuf reference held until
  /// cumulatively ACKed — retransmission re-reads the live data room; no
  /// byte is ever copied into a socket buffer. A consumed/forged token is
  /// -EINVAL BEFORE any protocol state mutates; -EAGAIN (TCP window full)
  /// and -EMSGSIZE keep the reservation valid for retry.
  std::int64_t sock_zc_send(int fd, FfZcBuf& zc, std::size_t len, Ipv4Addr ip,
                            std::uint16_t port);
  int sock_zc_abort(FfZcBuf& zc);

  // ---- zero-copy RX: loan mbuf data rooms to the application ----
  /// Fill up to out.size() read-only loans from fd's receive queue.
  /// Returns loans filled, 0 at EOF, -EAGAIN when nothing is queued,
  /// -ENOBUFS when a copy-backed slice could not bounce (retriable after
  /// recycling), -EMSGSIZE when the queued datagram can never fit a data
  /// room (drain it with the copy path), or -errno.
  std::int64_t sock_zc_recv(int fd, std::span<FfZcRxBuf> out) {
    return sock_zc_recv(fd, out, FfMsgBatchOpts{});
  }
  /// UDP loan bursts honor FfMsgBatchOpts::timeout_ns (recvmmsg-style
  /// coalescing: -EAGAIN until the batch fills or the oldest queued
  /// datagram has waited out the timeout, then the short count).
  std::int64_t sock_zc_recv(int fd, std::span<FfZcRxBuf> out,
                            const FfMsgBatchOpts& opts);
  /// Return one loan to the pool; -EINVAL on a consumed or forged token.
  int sock_zc_recycle(FfZcRxBuf& zc);

  // ---- ff_uring (API v3): the unified submission/completion boundary ----
  /// Attach a caller-initialized FfUring region (see uring.hpp). The ONE
  /// arming crossing: the whole ring capability is validated here — data
  /// and capability access over the full extent — and never again; from
  /// then on the main loop drains the SQ every iteration with zero
  /// crossings per operation. Returns a positive ring id or -errno.
  int uring_attach(const machine::CapView& mem, std::uint32_t sq_capacity,
                   std::uint32_t cq_capacity);
  /// End the stack's use of the delegated ring capability. Multishot arms
  /// (accept / epoll) registered through the ring are cancelled.
  int uring_detach(int id);
  /// The doorbell crossing: kick an immediate drain of ring `id` (the app
  /// rings it only on an empty->non-empty SQ transition while the stack
  /// reports itself parked). Returns SQEs consumed or -errno.
  int uring_doorbell(int id);
  /// Publish the park state into every attached ring's header (the loop
  /// harness calls this around its arbiter waits; the app-side push uses
  /// it to decide whether a doorbell crossing is needed at all).
  void urings_set_parked(bool parked);

  /// Assign fd's flow to QoS traffic class `cls` (API v7; OP_SET_CLASS /
  /// ff_set_class). Listeners propagate the class to accepted children.
  /// -EBADF on a bad fd, -EINVAL when cls >= kQosClasses.
  int sock_set_class(int fd, std::uint32_t cls);
  /// Replace the TX scheduler's per-class config (rates, quanta, caps).
  void set_qos_config(const QosConfig& cfg) { qos_.configure(cfg); }
  [[nodiscard]] const QosScheduler& qos() const noexcept { return qos_; }

  // ---- tenants (API v9): per-tenant resource accounting ----
  // See tenant.hpp for the quota-knob reference. Defined in tenant.cpp.
  /// Register a tenant; returns its id (>= 1).
  int tenant_register(std::string name, const TenantQuota& quota);
  /// Move fd into tenant `tid` (0 detaches it). Charges the socket gauge;
  /// -EMFILE when the tenant is at its socket cap, -EBADF/-EINVAL.
  int sock_set_tenant(int fd, int tid);
  /// Bind an attached ring to a tenant: its SQ drains under the tenant's
  /// weight, ops executed from it adopt the tenant as charging context,
  /// and its CQ-stall rounds count against the tenant's cap.
  int uring_bind_tenant(int ring_id, int tid);
  /// Hard-evict a tenant: detach its rings, abort + close its sockets,
  /// reclaim every outstanding loan, zc reservation and ARP-parked frame,
  /// and reap the aborted PCBs — pool/PCB/wheel baselines are restored
  /// before the call returns. Neighbours are untouched.
  int tenant_evict(int tid);
  [[nodiscard]] const TenantStats* tenant_stats(int tid) const {
    return tenants_.valid(tid) ? &tenants_.stats(tid) : nullptr;
  }
  [[nodiscard]] TenantTable& tenants() noexcept { return tenants_; }
  [[nodiscard]] const TenantTable& tenants() const noexcept {
    return tenants_;
  }

  int sock_close(int fd);
  [[nodiscard]] std::uint32_t sock_readiness(int fd) const;
  /// Monotonic readiness-activity counter (bytes delivered / connections
  /// queued): the generation multishot publication keys on.
  [[nodiscard]] std::uint64_t sock_rx_activity(int fd) const;

  int epoll_create();
  int epoll_ctl(int epfd, EpollOp op, int fd, std::uint32_t events,
                std::uint64_t data);
  int epoll_wait(int epfd, std::span<FfEpollEvent> out);
  /// Arm multishot delivery: `ring` (see event_ring.hpp) receives event
  /// batches from every subsequent main-loop iteration with no further
  /// call. Returns events published immediately, or -errno.
  int epoll_wait_multishot(int epfd, const machine::CapView& ring,
                           std::uint32_t capacity);
  int epoll_cancel_multishot(int epfd);

  // ---- diagnostics / tests ----
  [[nodiscard]] const NetifConfig& netif() const noexcept {
    return cfg_.netif;
  }
  [[nodiscard]] updk::EthDev& dev() noexcept { return *dev_; }
  [[nodiscard]] const SocketTable& sockets() const noexcept { return socks_; }
  [[nodiscard]] TcpPcb* find_pcb(const FourTuple& t);
  /// The listening PCB bound to `port` (tests: SYN-backlog accounting).
  [[nodiscard]] const TcpPcb* find_listener(std::uint16_t port) const;
  /// The hierarchical timer wheel (tests/censuses: registration count must
  /// track live armed PCB deadlines, and per-turn cost must scale with DUE
  /// timers, not PCBs).
  [[nodiscard]] const TimerWheel& timer_wheel() const noexcept {
    return wheel_;
  }
  /// Live connected/embryonic TCP PCBs (tests: churn teardown must reap —
  /// a stable count across connect/transfer/close cycles is the leak gate).
  [[nodiscard]] std::size_t tcp_pcb_count() const noexcept {
    return tcp_pcbs_.size();
  }
  void send_ping(Ipv4Addr dst, std::uint16_t id, std::uint16_t seq,
                 std::size_t payload_len);
  [[nodiscard]] const PingTracker& pings() const noexcept { return pings_; }

  struct Stats {
    std::uint64_t rx_frames = 0;
    std::uint64_t tx_frames = 0;
    std::uint64_t rx_dropped = 0;
    std::uint64_t tcp_rst_out = 0;
    std::uint64_t csum_errors = 0;
    /// Frames a flush could not hand to the device (TX ring full): they
    /// stay staged and retry at the next flush point — backpressure, not
    /// loss.
    std::uint64_t tx_stage_deferred = 0;
    /// Frames dropped because the stage overflowed while the device made
    /// no progress at all (unreachable with the polling device model;
    /// counted apart from deferrals, which are never losses).
    std::uint64_t tx_stage_drops = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Loss-recovery accounting aggregated over every TCP PCB this stack has
  /// ever owned — live connected/embryonic PCBs, listeners, and (via the
  /// reap-time accumulator) connections already torn down. The impairment
  /// bench reads these to tie wire-level loss causes to protocol response.
  struct TcpRecoveryStats {
    std::uint64_t rexmits = 0;            // retransmitted segments (all causes)
    std::uint64_t fast_rexmits = 0;       // dupack-triggered (RFC 5681)
    std::uint64_t rto_expirations = 0;    // RTO fires (backoff events)
    std::uint64_t spurious_rexmit_bytes = 0;  // rx-side duplicate payload
  };
  [[nodiscard]] TcpRecoveryStats tcp_recovery_stats() const;

  /// ARP pending-queue accounting (parked frames, capped-queue drops).
  [[nodiscard]] const ArpCache::Stats& arp_stats() const noexcept {
    return arp_.stats();
  }

  /// API-v2 accounting: how well callers amortize the per-call fixed costs.
  struct ApiStats {
    std::uint64_t v1_calls = 0;          // single-element invocations
    std::uint64_t batch_calls = 0;       // v2 batch invocations
    std::uint64_t batched_items = 0;     // elements moved through batches
    std::uint64_t validation_sweeps = 0; // whole-batch capability sweeps
    std::uint64_t zc_allocs = 0;
    std::uint64_t zc_sends = 0;
    std::uint64_t zc_aborts = 0;
    std::uint64_t zc_rx_loans = 0;     // loans handed out by ff_zc_recv
    std::uint64_t zc_rx_recycles = 0;  // loans returned via ff_zc_recycle
    std::uint64_t multishot_arms = 0;
    std::uint64_t multishot_events = 0;  // events published into rings
    // ---- ff_uring (API v3) ----
    std::uint64_t uring_attaches = 0;
    std::uint64_t uring_doorbells = 0;  // drain kicks (a crossing each in S2)
    std::uint64_t uring_drains = 0;     // drain sweeps that found SQEs
    std::uint64_t uring_sqes = 0;       // submissions consumed
    std::uint64_t uring_cqes = 0;       // completions published
    std::uint64_t uring_sqe_errors = 0; // per-entry -EINVAL verdicts
    // ---- deferred-CQE bounding (API v9) ----
    std::uint64_t cq_deferrals = 0;  // full-CQ rounds with work pending
    std::uint64_t cq_deferral_evictions = 0;  // stalled rings' arms dropped
    std::uint64_t sq_drain_throttled = 0;     // weighted-share cutoffs
  };
  [[nodiscard]] const ApiStats& api_stats() const noexcept { return api_; }
  /// Receive-path copy/loan accounting across all sockets (the RX census
  /// gates on the zero-copy path reporting zero copied bytes).
  [[nodiscard]] const RxStats& rx_stats() const noexcept { return rx_stats_; }
  /// Send-path copy/zc accounting across all sockets (the TX census gates
  /// on the TCP zc path reporting zero send-side byte copies).
  [[nodiscard]] const TxStats& tx_stats() const noexcept { return tx_stats_; }

  /// Offload capabilities negotiated against the device at construction
  /// (kOffload* bits from EthDev::offloads()). What the TX path may request
  /// via ol_flags and whether RX trusts descriptor checksum verdicts —
  /// tests assert a masked-off queue reports the bit absent here.
  [[nodiscard]] std::uint32_t negotiated_offloads() const noexcept {
    return offloads_neg_;
  }

  /// The compartment-crossing counter this stack's calls are charged to.
  /// The scenario layer binds it to the owning cVM's Trampoline (Scenario 1)
  /// or to the Intravisor's sealed-entry registry (Scenario 2); unbound
  /// stacks (pure in-process tests) report 0.
  void set_crossing_probe(std::function<std::uint64_t()> probe) {
    crossing_probe_ = std::move(probe);
  }
  [[nodiscard]] std::uint64_t trampoline_crossings() const {
    return crossing_probe_ ? crossing_probe_() : 0;
  }

  // ---- TcpEnv ----
  [[nodiscard]] sim::Ns tcp_now() override { return clock_->now(); }
  [[nodiscard]] std::uint32_t tcp_ts_now() override {
    return static_cast<std::uint32_t>(clock_->now().count() / 1000);
  }
  bool tcp_emit(TcpPcb& pcb, const TcpHeader& hdr, const TcpOptions& opts,
                std::size_t payload_off, std::size_t payload_len) override;
  TcpPcb* tcp_spawn_child(TcpPcb& listener, const FourTuple& tuple) override;
  void tcp_accept_ready(TcpPcb& listener, TcpPcb& child) override;
  [[nodiscard]] std::optional<MbufSlice> tcp_rx_loan(
      std::span<const std::byte> payload) override;

 private:
  // input path
  /// Map a span inside the frame currently being delivered onto its RX
  /// mbuf; nullopt when no burst mbuf is current or the span escaped it
  /// (reassembled fragments).
  [[nodiscard]] std::optional<MbufSlice> rx_slice_of(
      std::span<const std::byte> bytes) const;
  void ether_input(std::span<const std::byte> frame);
  void arp_input(std::span<const std::byte> payload);
  void ipv4_input(std::span<const std::byte> packet);
  void icmp_input(const Ipv4Header& ih, std::span<const std::byte> l4);
  void udp_input(const Ipv4Header& ih, std::span<const std::byte> l4);
  void tcp_input_seg(const Ipv4Header& ih, std::span<const std::byte> l4);
  void send_tcp_rst(const Ipv4Header& ih, const TcpHeader& th,
                    std::size_t payload_len);

  // output path. Frames are STAGED per loop turn into the per-class QoS
  // scheduler and flushed with tx_bursts of up to kTxStageCap chains
  // (flush_tx) — the driver doorbell amortizes exactly like the compartment
  // boundary, and deficit round-robin picks which classes fill each burst.
  // Every public entry point that can emit flushes before returning
  // (synchronous progress for inline callers and Scenario-2 proxies);
  // run_once flushes once per iteration for everything the datapath
  // produced. `cls` is the QoS class the frame rides (TCP: pcb.tclass();
  // UDP/zc: the socket mirror; ARP/control: kQosClassControl).
  /// TX offload metadata threaded from the protocol layer down to the mbuf
  /// that carries the frame (head mbuf ol_flags ABI — see updk/mbuf.hpp).
  /// Null = software frame (no flags set; the device leaves it untouched).
  struct TxOffloadMeta {
    std::uint32_t ol_flags = 0;
    std::uint8_t l4_len = 0;
  };
  // `tenant` attributes any frame the call parks on an unresolved ARP hop
  // (the park pins a pool buffer, so it charges the flow's tenant budget;
  // over budget the offender's OWN frame is dropped and counted).
  bool send_ipv4(Ipv4Addr dst, std::uint8_t proto,
                 std::span<const std::byte> l4, std::uint8_t cls = 0,
                 const TxOffloadMeta* ol = nullptr, int tenant = 0);
  bool transmit_ip_packet(std::span<const std::byte> ip_packet,
                          Ipv4Addr next_hop, std::uint8_t cls = 0,
                          const TxOffloadMeta* ol = nullptr, int tenant = 0);
  /// Resolve `next_hop`, prepend the Ethernet header into the chain head's
  /// headroom and stage the frame; an unresolved hop parks the (linearized)
  /// frame on the bounded ARP queue. Owns `head` — freed on failure.
  bool transmit_ip_chain(updk::Mbuf* head, Ipv4Addr next_hop,
                         std::uint8_t cls = 0, int tenant = 0);
  bool transmit_frame(const nic::MacAddr& dst, std::uint16_t ethertype,
                      std::span<const std::byte> payload,
                      std::uint8_t cls = kQosClassControl);
  void stage_frame(updk::Mbuf* head, std::uint8_t cls = 0);
  /// Flush the QoS stage with driver bursts (DRR-ordered, token-bucket
  /// paced); returns frames handed over.
  std::size_t flush_tx();
  /// The tail flush of an emitting API call: gives inline callers (and
  /// Scenario-2 proxies) synchronous wire progress. Suppressed while a
  /// uring drain is executing the ops — the drain flushes ONCE for the
  /// whole SQE window, which is the doorbell amortization the ring exists
  /// for (the safety flush before ring writes is never suppressed).
  void sync_flush() {
    if (!in_uring_drain_) flush_tx();
  }
  /// Prepend the Ethernet header into a chain head's headroom. False (and
  /// the chain freed) when the headroom cannot take it.
  bool prepend_ether(updk::Mbuf* head, const nic::MacAddr& dst,
                     std::uint16_t ethertype);
  /// Copy a chain into one fresh single-segment mbuf (ARP parking: a
  /// parked frame may reference live ring spans that must not outlive the
  /// next ring write). Null when the pool cannot supply the buffer.
  [[nodiscard]] updk::Mbuf* linearize_chain(updk::Mbuf* head);
  void send_arp(std::uint16_t oper, const nic::MacAddr& tha, Ipv4Addr tpa);
  [[nodiscard]] Ipv4Addr next_hop_for(Ipv4Addr dst) const;

  // batch/zero-copy internals. `swept` skips the per-call capability sweep
  // when the ff_uring drain already validated the whole pending window
  // (one amortized sweep per drain, like Trampoline::invoke_batch).
  std::int64_t writev_impl(int fd, std::span<const FfIovec> iov,
                           bool swept = false);
  std::int64_t readv_impl(int fd, std::span<const FfIovec> iov);
  std::int64_t sendmsg_impl(int fd, std::span<FfMsg> msgs, bool swept);
  /// Register a loan in the token table and hand out the bounded read-only
  /// view (shared by ff_zc_recv, the uring OP_ZC_RECV path and the
  /// recvmsg_batch loan mode, so the accounting cannot diverge).
  void zc_issue_loan(FfZcRxBuf& o, const MbufSlice& slice, std::size_t charge,
                     const FfSockAddrIn& from, TcpPcb* pcb, UdpPcb* udp,
                     int tenant);
  /// The tenant an operation on socket `s` charges: the socket's own
  /// tenant, or — for untenanted sockets driven through a tenant-bound
  /// ring — the ring's tenant (adopted for the duration of the drain).
  [[nodiscard]] int effective_tenant(const Socket* s) const noexcept {
    return s != nullptr && s->tenant != 0 ? s->tenant : active_tenant_;
  }
  /// Credit the tenant an ARP-parked frame was charged to (expiry, flush,
  /// eviction, teardown all funnel here before releasing the mbuf).
  void credit_parked_frame(updk::Mbuf* m) {
    auto it = parked_tenant_.find(m);
    if (it == parked_tenant_.end()) return;
    tenants_.credit_parked(it->second);
    parked_tenant_.erase(it);
  }
  /// Pop one queued UDP datagram as a loan into `o`. Returns 1, -EAGAIN
  /// (queue empty), -EMSGSIZE (copy-backed datagram can never bounce into
  /// a data room — drain it with the copy path), or -ENOBUFS (bounce pool
  /// empty; retriable after recycling). Failed bounces leave the datagram
  /// queued.
  std::int64_t udp_pop_loan(Socket* s, FfZcRxBuf& o);
  /// The recvmmsg-style coalescing gate both burst receive paths share:
  /// ready when `want` datagrams are queued, the oldest queued datagram
  /// has waited `timeout_ns`, or no timeout was requested.
  [[nodiscard]] bool udp_burst_ready(const UdpPcb& u, std::size_t want,
                                     std::uint64_t timeout_ns) const;
  std::int64_t udp_emit_dgram(Socket* s, const machine::CapView& buf,
                              std::size_t n, Ipv4Addr ip, std::uint16_t port);
  /// `payload_sum`: the datagram's cached partial checksum, computed once
  /// when the bytes entered at ff_zc_send — emission never re-reads them.
  bool zc_transmit(updk::Mbuf* m, std::size_t len, std::uint32_t payload_sum,
                   std::uint16_t src_port, Ipv4Addr dst,
                   std::uint16_t dst_port, const nic::MacAddr& dst_mac,
                   std::uint8_t cls = 0);

  // ff_uring internals: one registration per attached ring. References
  // into `urings_` stay valid across insertions (std::map), which the
  // epoll CQ sinks rely on.
  struct UringReg {
    machine::CapView mem;
    std::uint32_t sq_cap = 0;
    std::uint32_t cq_cap = 0;
    struct AcceptArm {
      int fd = -1;
      std::uint64_t user_data = 0;
      /// OP_ACCEPT_MULTISHOT a0 bit 0: auto-arm every accepted fd for
      /// readiness CQEs in this ring (no per-fd OP_EPOLL_CTL needed).
      bool auto_arm = false;
    };
    std::vector<AcceptArm> accept_arms;  // OP_ACCEPT_MULTISHOT listeners
    std::vector<int> epoll_arms;         // epfds sinking CQEs into this ring
    /// OP_CONNECT submissions in flight: the CQE posts when the handshake
    /// resolves (0 on ESTABLISHED, -errno on refusal/timeout).
    struct ConnectArm {
      int fd = -1;
      std::uint64_t user_data = 0;
    };
    std::vector<ConnectArm> connect_arms;
    /// Auto-armed accepted fds: readiness edges post as OP_EPOLL_ARM-shaped
    /// CQEs (result = mask, aux0 = fd). last_mask/last_gen dedup exactly
    /// like EpollInstance::publish, so steady readable fds do not spam CQEs.
    struct FdArm {
      int fd = -1;
      std::uint64_t user_data = 0;
      std::uint32_t last_mask = 0;
      std::uint64_t last_gen = 0;
    };
    std::vector<FdArm> fd_arms;
    /// Owning tenant (0 = untenanted): drain weight, charging context for
    /// the ops this ring submits, and the CQ-stall accounting below.
    int tenant = 0;
    /// Consecutive drain passes this ring sat with a FULL, unreaped CQ
    /// while work was pending. Reset the moment the CQ has space again;
    /// crossing the tenant's max_cq_stall_rounds evicts the ring's
    /// re-derivable subscription state (accept/readiness arms).
    std::uint32_t cq_stall_rounds = 0;
  };
  /// Drain every attached ring under ONE fair-shared per-iteration budget:
  /// the 64-SQE allowance splits evenly across rings and unused shares
  /// redistribute, so a heavy ring can no longer starve a light one within
  /// an iteration.
  bool drain_urings();
  /// Consume up to `budget` SQEs from one ring (decode + one validation
  /// sweep + execute). Returns SQEs consumed.
  std::uint32_t uring_drain_sqes(UringReg& r, std::uint32_t budget);
  /// Publish one CQE; false (and the ring's overflow word bumped) when the
  /// CQ is full — the caller defers, never drops.
  bool uring_cq_emit(UringReg& r, std::uint64_t user_data,
                     std::int64_t result, UringOp op, std::uint32_t flags,
                     std::uint64_t aux0, std::uint64_t aux1,
                     const machine::CapView* cap);
  [[nodiscard]] std::uint32_t uring_cq_space(const UringReg& r) const;
  /// SQEs currently pending in one ring's submission queue.
  [[nodiscard]] std::uint32_t uring_sq_pending(const UringReg& r) const;
  /// Deferred-CQE bounding: true when `r`'s CQ is full while work is
  /// pending — the caller must skip this ring's drain (backpressure
  /// confined to the one ring). Counts the deferral, advances the stall
  /// round, and past the tenant's max_cq_stall_rounds evicts the ring's
  /// re-derivable multishot arms (counted as cq_deferral_evictions).
  bool uring_cq_stalled(UringReg& r);
  /// Count one per-entry SQE verdict against the ring's tenant.
  void note_sqe_error(const UringReg& r);
  bool uring_service_accept(UringReg& r);
  /// Post CQEs for OP_CONNECT handshakes that resolved since submission.
  bool uring_service_connect(UringReg& r);
  /// Post readiness-edge CQEs for auto-armed accepted fds.
  bool uring_service_fd_arms(UringReg& r);
  /// Drop fd from every ring's connect/fd arms (socket closed or errored).
  void uring_forget_fd(int fd);
  /// Drop `epfd` from every ring's epoll_arms list. Called whenever an
  /// epoll instance's multishot delivery is replaced (re-armed onto
  /// another ring, onto a v2 event ring, or cancelled): the OLD ring must
  /// not disarm the new owner's delivery when it detaches later.
  void uring_forget_epoll_arm(int epfd);

  // housekeeping
  void process_timers(sim::Ns now, bool& progress);
  /// Reconcile one PCB's earliest deadline with its (single) wheel entry:
  /// cancel + re-arm only when the deadline actually changed. Called after
  /// every PCB-mutating operation — input, output, app calls, timer fires —
  /// so the wheel is the one source of truth for FfStack::next_deadline().
  void timer_sync(TcpPcb* pcb);
  /// Same reconciliation for the ARP pending-TTL deadline (one wheel entry
  /// with the reserved cookie 0).
  void arp_timer_sync();
  void reap_closed();
  /// Fold a dying PCB's recovery counters into the reaped accumulator so
  /// tcp_recovery_stats() keeps counting across connection churn.
  void accumulate_reaped(const TcpPcb& pcb);
  void publish_multishot();
  /// Publish current readiness of every interest-set fd into `ep`'s armed
  /// ring; returns events written (shared by arm-time and per-iteration
  /// publication so the masking/generation keying cannot diverge).
  int publish_ready(EpollInstance& ep);
  // With a known peer (connect), only ports whose reply-direction RSS hash
  // steers back to this shard's RX queue qualify — a flow's whole lifetime
  // stays on one shard. Peer-less allocation (bind) takes any free port.
  [[nodiscard]] std::uint16_t alloc_ephemeral_port(
      Ipv4Addr peer_ip = Ipv4Addr{}, std::uint16_t peer_port = 0);
  /// Local-port reference counting for connected PCBs (several PCBs may
  /// share a local port toward different remotes): keeps ephemeral-port
  /// allocation O(1) instead of scanning every PCB per candidate.
  void port_ref(std::uint16_t p);
  void port_unref(std::uint16_t p);
  [[nodiscard]] std::uint32_t new_iss();
  TcpPcb* make_pcb();

  StackConfig cfg_;
  updk::EthDev* dev_;
  updk::Mempool* pool_;
  machine::CompartmentHeap* heap_;
  sim::VirtualClock* clock_;

  SocketTable socks_;
  std::unordered_map<FourTuple, std::unique_ptr<TcpPcb>, FourTupleHash>
      tcp_pcbs_;
  std::unordered_map<std::uint16_t, std::unique_ptr<TcpPcb>> tcp_listeners_;
  std::unordered_map<std::uint16_t, UdpPcb*> udp_binds_;  // port -> pcb

  ArpCache arp_;
  // Hierarchical timing wheel: every armed PCB deadline (and the ARP
  // pending TTL) registers here; a loop turn expires only DUE timers.
  TimerWheel wheel_;
  TimerWheel::Id arp_wheel_id_ = TimerWheel::kInvalidId;
  std::optional<sim::Ns> arp_wheel_deadline_;
  FragReassembler reasm_;
  PingTracker pings_;
  Stats stats_;
  // Per-turn TX staging: emitted frames collect in the per-class QoS
  // scheduler and leave through DRR-ordered tx_bursts per flush (end of
  // run_once / end of each emitting API call). kTxStageCap is the burst
  // width handed to the driver per tx_burst call.
  static constexpr std::size_t kTxStageCap = 32;
  QosScheduler qos_;
  // Counters of TCP PCBs already reaped (reap_closed / listener teardown):
  // tcp_recovery_stats() folds these in so churn does not lose history.
  TcpPcb::Counters reaped_counters_{};
  // Connected-PCB local ports in use (port -> PCB count): O(1) ephemeral
  // allocation however many thousand connections are live.
  std::unordered_map<std::uint16_t, std::uint32_t> tcp_ports_;
  std::uint16_t next_ephemeral_ = 49152;
  std::uint16_t ip_id_ = 1;
  std::uint64_t iss_state_;
  // PCBs whose socket was closed; reaped once the protocol reaches CLOSED.
  std::unordered_set<TcpPcb*> detached_;
  // Deferred-output mode: PCBs with freshly queued app data.
  std::unordered_set<TcpPcb*> pending_output_;
  // PCBs with an armed GRO ack-flush deadline (TcpConfig::ack_flush_timeout).
  // A side list, not a wheel entry: the wheel's ~0.5 ms tick ceiling would
  // erase a µs-scale flush bound. Only actively-receiving PCBs appear here,
  // so the per-turn sweep is O(receivers with an ACK owed), not O(PCBs).
  std::vector<TcpPcb*> ack_flush_;

  // Outstanding zero-copy TX reservations (token -> owned mbuf + the
  // tenant whose budget the pinned room is charged to).
  struct ZcTxRes {
    updk::Mbuf* m = nullptr;
    int tenant = 0;
  };
  std::unordered_map<std::uint64_t, ZcTxRes> zc_pending_;
  std::uint64_t next_zc_token_ = 1;

  // Outstanding zero-copy RX loans. `pcb`/`udp` point at the budget to
  // credit on recycle and are nulled if the owning connection/socket dies
  // while the loan is out; recycling is then a pure pool return.
  struct ZcRxLoan {
    updk::Mbuf* m = nullptr;
    TcpPcb* pcb = nullptr;  // TCP: receive window to credit
    UdpPcb* udp = nullptr;  // UDP: queue budget to credit
    std::uint32_t charge = 0;  // pinned-memory charge held until recycle
    int tenant = 0;            // tenant budget the pinned room counts against
  };
  std::unordered_map<std::uint64_t, ZcRxLoan> zc_rx_loans_;
  std::uint64_t next_zc_rx_token_ = 1;

  // Attached ff_uring rings (id -> registration), drained every iteration.
  std::map<int, UringReg> urings_;
  int next_uring_id_ = 1;
  // Last park state published into the ring headers: the polling word is
  // rewritten only on the parked->polling transition, not every iteration.
  bool urings_parked_ = false;
  // True while a uring drain executes SQEs: per-op tail flushes defer to
  // the drain's one end-of-window flush (see sync_flush).
  bool in_uring_drain_ = false;

  // ---- tenants (API v9) ----
  TenantTable tenants_;
  // The tenant whose ring is currently being drained (0 outside drains):
  // ops on untenanted sockets adopt it as their charging context, and
  // token-table lookups reject cross-tenant tokens against it.
  int active_tenant_ = 0;
  // ARP-parked frame -> charged tenant (eviction and expiry credit it).
  std::unordered_map<updk::Mbuf*, int> parked_tenant_;

  // The RX-burst mbuf whose frame is currently being parsed (loan source).
  updk::Mbuf* rx_cur_ = nullptr;
  const std::byte* rx_cur_base_ = nullptr;  // scratch copy of its payload
  std::size_t rx_cur_len_ = 0;
  // The current frame's checksum verdict flags (kRxCsum* from the driver's
  // descriptor translation). Reassembly clears the L4 bits: a verdict
  // covers ONE wire frame, never a recomposed datagram.
  std::uint32_t rx_cur_ol_ = 0;

  // Offload negotiation (read once from dev_->offloads() at construction).
  std::uint32_t offloads_neg_ = 0;
  bool tx_tcp_csum_ = false;  // device inserts TCP checksums
  bool tx_udp_csum_ = false;  // device inserts UDP checksums
  bool tso_ = false;          // device slices TCP super-segments

  RxStats rx_stats_;
  TxStats tx_stats_;
  ApiStats api_;
  std::function<std::uint64_t()> crossing_probe_;
};

}  // namespace cherinet::fstack
