#include "fstack/epoll.hpp"

#include <cerrno>

namespace cherinet::fstack {

int EpollInstance::ctl(EpollOp op, int fd, std::uint32_t events,
                       std::uint64_t data) {
  switch (op) {
    case EpollOp::kAdd:
      if (interest_.contains(fd)) return -EEXIST;
      interest_[fd] = Interest{events, data};
      return 0;
    case EpollOp::kMod: {
      const auto it = interest_.find(fd);
      if (it == interest_.end()) return -ENOENT;
      it->second = Interest{events, data};
      return 0;
    }
    case EpollOp::kDel:
      return interest_.erase(fd) > 0 ? 0 : -ENOENT;
  }
  return -EINVAL;
}

}  // namespace cherinet::fstack
