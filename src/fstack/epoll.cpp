#include "fstack/epoll.hpp"

#include <cerrno>

#include "fstack/event_ring.hpp"

namespace cherinet::fstack {

int EpollInstance::ctl(EpollOp op, int fd, std::uint32_t events,
                       std::uint64_t data) {
  switch (op) {
    case EpollOp::kAdd:
      if (interest_.contains(fd)) return -EEXIST;
      interest_[fd] = Interest{events, data};
      return 0;
    case EpollOp::kMod: {
      const auto it = interest_.find(fd);
      if (it == interest_.end()) return -ENOENT;
      it->second = Interest{events, data};
      return 0;
    }
    case EpollOp::kDel:
      last_.erase(fd);
      return interest_.erase(fd) > 0 ? 0 : -ENOENT;
  }
  return -EINVAL;
}

void EpollInstance::arm_multishot(machine::CapView ring,
                                  std::uint32_t capacity) {
  ring_ = ring;
  ring_capacity_ = capacity;
  sink_ = nullptr;
  last_.clear();  // re-arming republishes the current readiness
}

void EpollInstance::arm_multishot_sink(
    std::function<bool(std::uint32_t, std::uint64_t)> sink) {
  sink_ = std::move(sink);
  ring_.reset();
  ring_capacity_ = 0;
  last_.clear();
}

void EpollInstance::disarm_multishot() {
  ring_.reset();
  ring_capacity_ = 0;
  sink_ = nullptr;
  last_.clear();
}

bool EpollInstance::publish(int fd, std::uint32_t ready, std::uint64_t gen) {
  auto& last = last_[fd];
  if (ready == 0) {  // went quiet: remember, but epoll delivers no event
    last.mask = 0;
    last.gen = gen;
    return false;
  }
  if (ready == last.mask && gen == last.gen) return false;
  if (sink_ != nullptr) {  // uring CQ delivery (OP_EPOLL_ARM)
    if (!sink_(ready, interest_.at(fd).data)) return false;  // CQ full: retry
    last.mask = ready;
    last.gen = gen;
    return true;
  }
  const machine::CapView& r = *ring_;
  const std::uint32_t head = r.atomic_load_u32(0);
  const std::uint32_t tail = r.atomic_load_u32(4);
  if (tail - head >= ring_capacity_) {  // full: drop, retry next iteration
    r.atomic_store_u32(12, r.atomic_load_u32(12) + 1);
    return false;
  }
  const std::uint32_t slot = tail & (ring_capacity_ - 1);
  const std::uint64_t off = FfEventRing::kHeaderBytes +
                            static_cast<std::uint64_t>(slot) *
                                FfEventRing::kEventBytes;
  r.store<std::uint32_t>(off, ready);
  r.store<std::uint64_t>(off + 4, interest_.at(fd).data);
  r.atomic_store_u32(4, tail + 1);  // release: payload before index
  last.mask = ready;
  last.gen = gen;
  return true;
}

}  // namespace cherinet::fstack
