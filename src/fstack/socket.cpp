#include "fstack/socket.hpp"

namespace cherinet::fstack {

Socket* SocketTable::create(SockKind kind) {
  if (open_ >= max_) return nullptr;
  // Reuse the lowest free slot (POSIX-like fd behaviour).
  std::size_t idx = 0;
  for (; idx < slots_.size(); ++idx) {
    if (!slots_[idx]) break;
  }
  if (idx == slots_.size()) slots_.emplace_back();
  auto s = std::make_unique<Socket>();
  s->fd = static_cast<int>(idx) + kFirstFd;
  s->kind = kind;
  if (kind == SockKind::kUdp) s->udp = std::make_unique<UdpPcb>();
  if (kind == SockKind::kEpoll) s->epoll = std::make_unique<EpollInstance>();
  slots_[idx] = std::move(s);
  ++open_;
  return slots_[idx].get();
}

Socket* SocketTable::get(int fd) {
  const int idx = fd - kFirstFd;
  if (idx < 0 || static_cast<std::size_t>(idx) >= slots_.size()) {
    return nullptr;
  }
  return slots_[idx].get();
}

const Socket* SocketTable::get(int fd) const {
  const int idx = fd - kFirstFd;
  if (idx < 0 || static_cast<std::size_t>(idx) >= slots_.size()) {
    return nullptr;
  }
  return slots_[idx].get();
}

void SocketTable::release(int fd) {
  const int idx = fd - kFirstFd;
  if (idx < 0 || static_cast<std::size_t>(idx) >= slots_.size() ||
      !slots_[idx]) {
    return;
  }
  slots_[idx].reset();
  --open_;
}

}  // namespace cherinet::fstack
