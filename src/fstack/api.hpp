// The F-Stack-compatible public API, CHERI-ported — v2: batch-first.
//
// v1 mirrored the BSD socket API one call at a time; every call paid one
// compartment crossing, one capability validation and one stack-mutex
// acquisition (paper Fig. 4: ~125 ns of trampoline per ff_write, Fig. 6:
// the per-call lock is the scaling cliff). v2 redesigns the surface around
// batches so those fixed costs amortize over N buffers per call, while the
// v1 calls remain as thin single-element wrappers.
//
// v1 -> v2 migration table
// ------------------------------------------------------------------------
//  v1 (one crossing per call)         | v2 (one crossing per batch)
// ------------------------------------|-----------------------------------
//  ff_write(fd, cap, n)               | ff_writev(fd, {iov...})
//  ff_read(fd, cap, n)                | ff_readv(fd, {iov...})
//  ff_sendto(fd, cap, n, to) x N      | ff_sendmsg_batch(fd, {msg...})
//  ff_recvfrom(fd, cap, n, &from) x N | ff_recvmsg_batch(fd, {msg...})
//  copy into cap, then ff_sendto      | ff_zc_alloc + write + ff_zc_send
//  ff_read copies out of the stack    | ff_zc_recv(fd, {loan...}) +
//    (RX byte ring memcpy per call)   |   ff_zc_recycle[_batch]: read-only
//                                     |   mbuf loans, zero receive copies
//  ff_epoll_wait(epfd, evs) per loop  | ff_epoll_wait_multishot(epfd, ring)
//    (one crossing per wait)          |   armed ONCE; event batches land in
//                                     |   the caller's capability ring every
//                                     |   main-loop iteration, no re-cross
// ------------------------------------------------------------------------
//  semantics deltas:
//   * one bounds/permission validation sweep covers the whole batch and is
//     ATOMIC: any invalid element faults (CapFault) before a byte moves;
//   * short counts replace -EAGAIN when only part of a batch fits;
//   * zero-length iovecs are legal and skipped; an all-empty batch is 0;
//   * a consumed FfZcBuf token (double ff_zc_send / send after abort)
//     returns -EINVAL;
//   * ff_zc_recv loans are exactly bounded and READ-ONLY; the data room
//     returns to the pool only through ff_zc_recycle, and a double recycle
//     or forged token is -EINVAL; outstanding loans stay charged against
//     the receive window, so a slow recycler throttles its peer;
//   * ff_read/ff_readv interleave freely with outstanding loans: bytes
//     still arrive in order (the copy is simply taken lazily from the
//     queued RX chain instead of an eager per-segment memcpy);
//   * multishot events are activity-triggered: an fd re-reports when its
//     readiness mask changes OR when new readiness activity lands (more
//     bytes / another queued connection) while the mask is unchanged —
//     consumers must drain and tolerate events for data already consumed
//     (io_uring multishot discipline).
//
// v2 -> v3 migration table: the ff_uring unified boundary
// ------------------------------------------------------------------------
// v3 converges the three separate v2 amortization channels — SyscallBatch
// envelopes, the multishot epoll event ring, and the zc loan/recycle token
// calls — into ONE io_uring-style submission/completion capability-ring
// pair (fstack/uring.hpp) armed by a single ff_uring_attach crossing and
// drained by the stack's main loop with ZERO crossings per operation in
// steady state (doorbell crossings only on empty->non-empty SQ transitions
// while the stack is parked).
//
//  v2 (one crossing per batch)         | v3 (zero crossings per op)
// -------------------------------------|----------------------------------
//  ff_writev(fd, {iov...})             | SQE OP_WRITEV: <= 8 exactly-
//                                      |   bounded iovec caps per entry
//  ff_sendmsg_batch(fd, {msg...})      | SQE OP_SENDMSG_BATCH: <= 8
//                                      |   datagram caps to one peer
//  ff_zc_alloc(len, &zc) x N           | SQE OP_ZC_ALLOC: one CQE per
//                                      |   reservation (token + WRITABLE
//                                      |   bounded cap into the data room)
//                                      |   — zc TX with no per-alloc
//                                      |   crossing
//  ff_zc_send(fd, zc, len, to)         | SQE OP_ZC_SEND (token in a0);
//                                      |   on a TCP fd the slice joins the
//                                      |   send queue as a retained mbuf
//                                      |   ref held until cumulative ACK
//  ff_zc_recv(fd, {loan...})           | SQE OP_ZC_RECV: one CQE per loan
//                                      |   (token + source + loan cap);
//                                      |   UDP: a1 = recvmmsg-style burst
//                                      |   timeout ns
//  ff_zc_recycle_batch({zc...})        | SQE OP_RECYCLE: <= 16 tokens per
//                                      |   entry, per-token verdicts
//  ff_accept x N / accept_batch        | SQE OP_ACCEPT_MULTISHOT: armed
//                                      |   once; every accepted conn posts
//                                      |   a CQE with the new fd
//  ff_epoll_wait_multishot(epfd, ring) | SQE OP_EPOLL_ARM: readiness lands
//                                      |   as CQEs in the same CQ as every
//                                      |   other completion
//  SyscallBatch + invoke_batch         | unchanged surface; the envelope
//                                      |   now marshals through the same
//                                      |   ring shape (iv::SyscallRing)
// ------------------------------------------------------------------------
//  semantics deltas (v3):
//   * the whole pending SQ window is capability-validated in ONE sweep per
//     drain (amortized like Trampoline::invoke_batch), but verdicts are
//     PER ENTRY: a forged/replayed SQE capability earns that entry alone
//     -EINVAL — it cannot poison the rest of the sweep;
//   * a full CQ backpressures: the stack defers the SQE (and multishot
//     publications) and retries next iteration — no CQE is ever dropped;
//   * SQE buffer caps belong to the app again once its CQE is reaped; CQE
//     loan caps follow the PR-2 recycle contract (window-charged until
//     OP_RECYCLE);
//   * TCP zc TX ownership: an OP_ZC_ALLOC grant belongs to the app until
//     OP_ZC_SEND succeeds (or ff_zc_abort); from then on the STACK owns
//     the mbuf reference until the bytes are cumulatively ACKed — a
//     partial ACK trims the head slice, retransmission re-reads the live
//     data room, and connection teardown (FIN completion / RST / RTO
//     give-up) releases every retained reference. A consumed or forged
//     token answers -EINVAL before any TCP state mutates; -EAGAIN (send
//     window full) keeps the reservation valid for retry;
//   * every v2 call above keeps working as a thin shim over the same
//     stack internals — v3 is additive, not a flag day.
//
// v4: scatter-gather wire emission (no new surface; semantics below)
// ------------------------------------------------------------------------
// Frame emission is now true scatter-gather end to end (the API is
// unchanged; what changed is what the stack does with the bytes):
//   * headers serialize straight into a header mbuf's headroom; payload
//     leaves as INDIRECT mbufs (updk::Mempool::alloc_indirect) chained
//     over the still-live send-queue stores — zero payload byte copies at
//     emission, first transmission and retransmission alike (the
//     chained-mbuf driver ABI, ownership and the RX linearization rule
//     are documented in updk/mbuf.hpp);
//   * every slice admitted into a send queue caches its partial checksum,
//     computed ONCE when the bytes enter the stack (during the admit copy
//     for ff_write/ff_writev, one capability walk at ff_zc_send);
//     per-segment checksumming composes those partials offset-aware
//     (fstack/checksum.hpp checksum_combine) in O(#slices) — emission
//     never re-reads payload (TxStats::emit_payload_reads gates at 0 for
//     the zc census). MSS-sized zc slices keep segments slice-aligned;
//   * outbound frames STAGE per main-loop turn and leave through one
//     driver tx_burst of up to 32 chains (every emitting API call flushes
//     before returning, so inline callers and Scenario-2 proxies keep
//     synchronous wire progress); a full device ring defers staged frames
//     to the next flush — backpressure, not loss;
//   * receivers coalesce ACKs GRO-style (TcpConfig::ack_coalesce_segments,
//     default every 8th in-order segment), which is what lets the
//     ACK-clocked sender fill those bursts; a µs-scale idle flush
//     (TcpConfig::ack_flush_timeout, the napi gro_flush_timeout analogue)
//     ACKs a paused sub-threshold tail so small-cwnd flows stay
//     ACK-clocked instead of delack-clocked, with the delayed-ACK timer
//     as the outer protocol bound; congestion control counts acked bytes
//     (RFC 3465), so stretch ACKs do not slow cwnd growth;
//   * frames to an unresolved next hop park on the ARP queue as mbufs,
//     bounded per hop in frames AND bytes with a pending-resolution TTL
//     (drops and expirations counted in ArpCache::Stats).
//
// v4 -> v5 migration table: the ring-native control plane
// ------------------------------------------------------------------------
// v3/v4 left connect, close and epoll_ctl as the last per-call crossings —
// exactly the tax a churn-heavy proxy pays per CONNECTION rather than per
// byte. v5 moves the whole connection lifecycle onto the ring: after the
// one ff_uring_attach, a client never crosses again (doorbells aside).
//
//  v4 (one crossing per call)          | v5 (zero crossings per lifecycle)
// -------------------------------------|----------------------------------
//  ff_connect(fd, addr) -> -EINPROGRESS| SQE OP_CONNECT (a0 = packed
//    + epoll EPOLLOUT wait + getsockopt|   addr): ONE verdict CQE when the
//    -style completion probe           |   handshake RESOLVES — result 0
//                                      |   on ESTABLISHED, -errno on
//                                      |   refusal/timeout; never an
//                                      |   intermediate -EINPROGRESS
//  ff_close(fd)                        | SQE OP_CLOSE: immediate-verdict
//                                      |   CQE (result = close verdict,
//                                      |   aux0 echoes the fd)
//  ff_epoll_ctl(epfd, op, fd, ev)      | SQE OP_EPOLL_CTL (a0 = EpollOp,
//                                      |   a1 = target fd, a2 = events,
//                                      |   a3 = user data): immediate
//                                      |   per-entry verdict CQE
//  epoll_ctl(ADD) per accepted fd      | OP_ACCEPT_MULTISHOT a0 bit 0 =
//                                      |   auto-arm: every accepted fd is
//                                      |   subscribed to readiness CQEs
//                                      |   (kEpollArm-shaped, aux0 = fd)
//                                      |   in the acceptor's own CQ — no
//                                      |   epoll instance needed at all
// ------------------------------------------------------------------------
//  semantics deltas (v5) — control-plane ownership rules:
//   * OP_CONNECT pins the fd's verdict to the submitting ring: the CQE
//     arrives on THAT ring even if the app also polls classically; a bad
//     fd answers an inline -EBADF CQE on the next drain;
//   * OP_CLOSE ends app ownership of the fd at CQE time — later classic
//     calls on it are -EBADF — but zc RX loan tokens OUTLIVE the
//     connection: each outstanding token still owes exactly one
//     OP_RECYCLE/ff_zc_recycle (a pure pool return once the PCB died) and
//     replays still answer -EINVAL;
//   * auto-armed readiness follows the multishot discipline (kCqeMore set
//     while the subscription persists, mask-change/activity triggered);
//   * listener SYN queues are BOUNDED (listen backlog caps embryonic
//     PCBs; a full accept queue also refuses new SYNs): surplus SYNs are
//     dropped and counted (TcpPcb::syn_backlog_drops), and the client's
//     retransmit makes overflow a deferral, not a denial;
//   * per-PCB protocol timers (RTO, delack, TIME_WAIT, keep-alive, ARP
//     pending TTL) live in a hierarchical timing wheel
//     (fstack/timer_wheel.hpp): a loop turn costs O(due timers), not
//     O(connections) — the bench/churn_connection_scale.cpp census gates
//     10^5 idle PCBs at <= 2x the 10^3 per-turn cost;
//   * every classic call keeps working — v5 is additive, not a flag day.
//
// ------------------------------------------------------------------------
// v5 -> v6 migration table: sharded stacks + RSS multi-queue steering
// ------------------------------------------------------------------------
// v5 scaled the API; the one shared stack mutex still serialized every
// flow behind it. v6 runs N independent FfStack shards — each with its own
// mempool, PCB table, ARP cache, timer wheel and uring drain set — and
// steers flows with the NIC's multi-queue RSS (nic/e82576.hpp: per-queue
// RX/TX rings, Toeplitz 5-tuple hash through a 128-entry RETA, 8 L4
// destination-port filters). Nothing in THIS header changed shape: v6 is
// a topology migration, not a call-signature one.
//
//  v5 (one stack, one mutex)           | v6 (N shards, per-shard mutexes)
// -------------------------------------|----------------------------------
//  FullStackInstance(card, port, ...)  | FullStackInstance(card, port, q,
//    single-queue attach               |   queue_count, ...): shard q of
//                                      |   queue_count on one port; first
//                                      |   attach configures the port,
//                                      |   sibling attaches are idempotent
//  Scenario2Service(iv, cvm1, inst)    | Scenario2Service(iv, cvm1,
//                                      |   {&inst0, ..., &instN-1}): one
//                                      |   compartment mutex PER SHARD
//  svc.make_proxy_ops(app)             | svc.make_proxy_ops(app, shard):
//                                      |   ATTACH-TIME PINNING — every op,
//                                      |   uring and mutex word the app
//                                      |   touches belongs to that shard
//                                      |   for the app's whole lifetime
//  svc.run_loop(stop, arb)             | svc.run_shard_loop(s, stop, arb)
//                                      |   per shard (run_loop = shard 0)
//  dev.poll(now) (whole device)        | dev.poll_queue(port, q, now):
//                                      |   TX for the CALLER'S queue only
//                                      |   + the shared RX classify drain
//
//  semantics deltas (v6) — flow placement rules:
//   * a connection lives and dies on ONE shard: ff_connect picks an
//     ephemeral port whose REPLY-direction Toeplitz hash RETA-maps to the
//     owning shard's RX queue; ff_listen pins the listener port to the
//     shard's queue with an L4 filter (priority over RSS);
//   * non-IPv4 frames (ARP) replicate to EVERY queue — each shard keeps
//     its own neighbour cache, so no shard ever asks a sibling;
//   * the only cross-shard surface is the NIC port itself (doorbells +
//     wire serialization behind one short per-port mutex) — PCBs, mbufs
//     and timers are reachable from exactly one shard's capabilities;
//   * the compartment mutex is now per shard: contention exists only
//     between an app and ITS OWN service loop, never between flows on
//     different shards (bench/ablation_locking.cpp gates the sharded leg
//     at zero contended acquisitions);
//   * every classic single-instance construction keeps working — shard
//     count 1 (or the legacy ctor) is byte-for-byte the v5 behaviour.
//
// ------------------------------------------------------------------------
// v6 -> v7 migration table: classed QoS TX scheduling
// ------------------------------------------------------------------------
// v6 emission drained the per-turn TX stage FIFO, so one bulk flow could
// fill every burst slot and park a latency-critical flow behind 32
// full-size frames. v7 stages frames into per-class queues drained by
// deficit round-robin with optional per-class token-bucket pacing
// (fstack/qos.hpp); every v6 call keeps working and every flow defaults to
// class 0 — v7 is additive.
//
//  v6 (FIFO TX stage)                  | v7 (classed QoS stage)
// -------------------------------------|----------------------------------
//  (no per-flow class)                 | ff_set_class(st, fd, cls):
//                                      |   fd's flow rides QoS class
//                                      |   cls (0..kQosClasses-1); on a
//                                      |   listener, subsequently accepted
//                                      |   children inherit the class
//  (no ring-native equivalent)         | OP_SET_CLASS (uring.hpp): a0 =
//                                      |   class; immediate verdict CQE —
//                                      |   class changes ride the ring like
//                                      |   every other v5 control op
//  (no scheduler config)               | FfStack::set_qos_config(QosConfig):
//                                      |   per-class rate_bytes_per_sec
//                                      |   (token bucket; 0 = unlimited),
//                                      |   burst_bytes, quantum_bytes
//                                      |   (DRR), queue_cap
//  stats().tx_stage_deferred/_drops    | same fields, same meaning; plus
//                                      |   FfStack::qos().stats() per-class
//                                      |   enqueued/sent/throttled counters
//
//  semantics deltas (v7):
//   * a token-paced frame STAYS STAGED until virtual time refills its
//     bucket (pacing, not loss); FfStack::next_deadline() reports the
//     release instant so arbiter-driven loops wake exactly then;
//   * TCP carries the class on the PCB — ACKs, retransmits and FIN ride
//     the flow's class, and accepted children inherit the listener's;
//   * the stack's own control traffic (ARP) rides the top class
//     (kQosClassControl), so bulk data cannot starve next-hop resolution.
//
// ------------------------------------------------------------------------
// v7 -> v8 migration table: hardware offload through the device model
// ------------------------------------------------------------------------
// v7 checksummed every TX segment in software (composable cached partials,
// but still a fold per segment) and software-verified every RX datagram.
// v8 negotiates offload capabilities against the device at attach
// (updk/ethdev.hpp kOffload* bits, masked by the PMD to what the silicon
// supports) and moves the work into the 82576 model: legacy css/cso
// checksum insertion over gathered chains, advanced context descriptors,
// RX descriptor checksum verdicts, and TSO slicing of super-segments.
// Nothing in THIS header changed shape — v8 is a capability negotiation,
// not a call-signature change; a queue attached with offloads = 0 runs the
// v7 software path byte-for-byte.
//
//  v7 (software checksums)             | v8 (negotiated offloads)
// -------------------------------------|----------------------------------
//  (stack always folds checksums)      | EthConf.offloads requests
//                                      |   kOffloadTxTcpCsum / TxUdpCsum /
//                                      |   TxTso / RxCsum; EthDev::
//                                      |   offloads() reports the masked
//                                      |   set; FfStack::
//                                      |   negotiated_offloads() is what
//                                      |   the stack actually elides work
//                                      |   against (default: checksums on,
//                                      |   TSO opt-in)
//  checksum walk per emitted segment   | tcp_emit/udp_emit seed the L4
//                                      |   field with the folded pseudo
//                                      |   sum and hand geometry to the
//                                      |   driver via mbuf ol_flags +
//                                      |   l2/l3/l4_len (updk/mbuf.hpp
//                                      |   offload ABI); tx_stats().
//                                      |   stack_checksum_bytes counts
//                                      |   software-walked bytes — 0 on
//                                      |   the offload path
//  segments capped at MSS              | with kOffloadTxTso negotiated the
//                                      |   PCB emits super-segments up to
//                                      |   TcpConfig.tso_max_segs * MSS;
//                                      |   the device slices to wire MSS
//                                      |   with per-frame IP id/seq/csum
//                                      |   fixup (FIN/PSH only on the last
//                                      |   slice); dev().stats().
//                                      |   tso_frames / tso_bytes census
//  software verify per RX datagram     | RX descriptors carry device
//                                      |   checksum verdicts (mbuf
//                                      |   kRxCsumIpGood/Bad, L4Good/Bad);
//                                      |   Good elides the software fold,
//                                      |   Bad drops at the stack's
//                                      |   verdict check (stats().
//                                      |   csum_errors) — corruption past
//                                      |   the FCS cannot reach a socket
//
//  semantics deltas (v8):
//   * offload capability is PER QUEUE: shards of one port may negotiate
//     different sets, and a masked queue falls back to software with
//     identical wire bytes (tests/test_offload.cpp pins both);
//   * frames the device could not parse (non-IPv4, fragments, UDP
//     checksum 0) carry no verdict and verify in software as before;
//     reassembled datagrams always software-verify their L4 sum;
//   * TSO is excluded from kOffloadDefault: it changes emission
//     granularity (one super-segment = one descriptor chain), which the
//     frames-per-doorbell gates in bench/table2 would misread as a
//     regression — enable it per queue via EthConf.offloads = kOffloadAll.
//
// ------------------------------------------------------------------------
// v8 -> v9 migration table: multi-tenant quotas and graceful degradation
// ------------------------------------------------------------------------
// v8 assumed the app compartments sharing one stack trust each other with
// the stack's SHARED resources: any ring could pin the whole mbuf pool in
// loans, monopolize the 64-SQE drain budget, or force unbounded stack-side
// completion state by never reaping its CQ. v9 adds per-tenant accounting
// so a hostile or buggy compartment degrades ONLY itself. Every v8 call
// keeps its exact signature and semantics — tenancy is opt-in per fd/ring;
// an app that never calls ff_tenant_register runs the v8 behaviour
// byte-for-byte (tenant id 0 = unlimited, uncounted).
//
//  v8 (mutual trust)                    | v9 (per-tenant quotas)
// -------------------------------------|----------------------------------
//  all sockets/rings share one pool    | ff_tenant_register(name, quota)
//    and drain budget, first come      |   mints a tenant id; ff_set_tenant
//    first served                      |   (fd) and ff_uring_bind_tenant
//                                      |   (ring) bill resources to it
//                                      |   (tenant.hpp quota-knob table)
//  a loan/reservation/parked frame     | each pinned room charges the
//    pins a pool room anonymously      |   owner's max_pool_mbufs budget
//                                      |   (plus per-cause caps); over
//                                      |   budget the OFFENDER alone gets
//                                      |   -ENOBUFS/-EMFILE, retriable by
//                                      |   recycling — neighbours' calls
//                                      |   never see a tenant's verdicts
//  SQ drain round-robins equally       | rings drain DRR-style under
//                                      |   sq_drain_weight; a throttled
//                                      |   ring's SQEs stay queued in ITS
//                                      |   ring memory (-EAGAIN shape) and
//                                      |   the cut is counted
//  a full, never-reaped CQ forces the  | full-CQ-with-work rounds count as
//    stack to retain and re-walk arms  |   cq_deferrals; past the tenant's
//    forever                           |   max_cq_stall_rounds the ring's
//                                      |   RE-DERIVABLE accept/readiness
//                                      |   arms are evicted (counted) —
//                                      |   stack-side deferral state is
//                                      |   bounded per ring
//  misbehaviour diagnosed from global  | ff_tenant_stats(st, tid): per-
//    ApiStats only                     |   tenant gauges + per-cause
//                                      |   reject counters; gauges return
//                                      |   to 0 on release, proving no leak
//  no recovery from a hostile peer     | ff_tenant_evict(st, tid) reclaims
//    short of stack teardown           |   every PCB, wheel timer, loan,
//                                      |   reservation and parked frame to
//                                      |   baseline; neighbours untouched
//
//  semantics deltas (v9):
//   * zc tokens are tenant-scoped: a token submitted from a ring bound to
//     a DIFFERENT tenant answers -EINVAL with all state intact (replay/
//     forgery across compartments is inert);
//   * accepted children inherit the listener's tenant (as with tclass) and
//     charge its socket gauge at accept — past max_sockets the child is
//     aborted at the accept boundary, not left half-open;
//   * scenarios/scenario3.hpp drives N tenant compartments over one stack
//     with hostile-profile fault injection (scenarios/adversary.hpp).
//
// The capability-qualified buffer handle is machine::CapView — the
// `void* __capability` of the paper's modified F-Stack API; this header
// remains the surface Table I's "modified LoC" census counts.
#pragma once

#include <cstdint>
#include <span>

#include "fstack/api_types.hpp"
#include "fstack/stack.hpp"
#include "fstack/uring.hpp"

namespace cherinet::fstack {

inline constexpr int kAfInet = 2;
inline constexpr int kSockStream = 1;
inline constexpr int kSockDgram = 2;

/// Create a socket. Returns fd (>= 3) or -errno.
int ff_socket(FfStack& st, int domain, int type, int protocol);

int ff_bind(FfStack& st, int fd, const FfSockAddrIn& addr);
int ff_listen(FfStack& st, int fd, int backlog);
/// Non-blocking accept: fd, -EAGAIN when the queue is empty.
int ff_accept(FfStack& st, int fd, FfSockAddrIn* peer);
/// Non-blocking connect: -EINPROGRESS, completion via ff_epoll (EPOLLOUT).
int ff_connect(FfStack& st, int fd, const FfSockAddrIn& addr);

// ---------------------------------------------------------------- v1 calls
// Thin wrappers over the batch path (one-element batches).

/// Capability-qualified write: queues into the socket send buffer.
/// Returns bytes queued, -EAGAIN when the buffer is full, or -errno.
std::int64_t ff_write(FfStack& st, int fd, const machine::CapView& buf,
                      std::size_t nbytes);
/// Capability-qualified read. Returns bytes, 0 at EOF, or -errno.
std::int64_t ff_read(FfStack& st, int fd, const machine::CapView& buf,
                     std::size_t nbytes);

std::int64_t ff_sendto(FfStack& st, int fd, const machine::CapView& buf,
                       std::size_t nbytes, const FfSockAddrIn& to);
std::int64_t ff_recvfrom(FfStack& st, int fd, const machine::CapView& buf,
                         std::size_t nbytes, FfSockAddrIn* from);

// ---------------------------------------------------------------- v2 batch
// Scatter-gather TCP. One validation sweep, one crossing, one lock for the
// whole vector. Returns total bytes moved (short count when the socket
// buffer fills mid-batch), 0 for an all-empty batch (or EOF on readv),
// -EAGAIN when nothing could move, or -errno.
std::int64_t ff_writev(FfStack& st, int fd, std::span<const FfIovec> iov);
std::int64_t ff_readv(FfStack& st, int fd, std::span<const FfIovec> iov);

// UDP bursts. Returns the number of datagrams moved (per-message byte
// counts land in FfMsg::result), -EAGAIN when none, or -errno. Send is
// atomic over validation: an invalid buffer anywhere in the burst faults
// before any datagram is emitted. Receive preserves arrival order.
// The opts overload adds the recvmmsg-style burst timeout
// (FfMsgBatchOpts::timeout_ns): the call coalesces — answering -EAGAIN —
// until the batch fills or the oldest queued datagram has waited out the
// timeout, then returns the short count. timeout_ns 0 keeps the classic
// return-what-is-queued semantics.
std::int64_t ff_sendmsg_batch(FfStack& st, int fd, std::span<FfMsg> msgs);
std::int64_t ff_recvmsg_batch(FfStack& st, int fd, std::span<FfMsg> msgs);
std::int64_t ff_recvmsg_batch(FfStack& st, int fd, std::span<FfMsg> msgs,
                              const FfMsgBatchOpts& opts);

// Zero-copy TX. ff_zc_alloc reserves an mbuf data room and hands the
// application a bounded capability straight into it; ff_zc_send submits the
// filled reservation — the payload is never copied through the socket
// layer. On a UDP socket the headers prepend in the mbuf headroom and the
// buffer goes to the driver. On a TCP socket (`to` is ignored — the
// connection addresses the peer) the slice joins the send queue as a
// RETAINED MBUF REFERENCE: tcp_output gathers segments directly out of the
// data room, retransmission re-reads the still-live buffer, and cumulative
// ACK is what finally releases the reference (a partial ACK trims the head
// slice). Returns 0/-errno from alloc (-EMSGSIZE over MTU, -ENOBUFS pool
// empty); bytes queued/sent or -errno from send: -EINVAL on a consumed or
// forged token BEFORE any protocol state mutates, -EAGAIN (TCP send window
// full) and -EMSGSIZE keep the reservation valid for retry. ff_zc_abort
// releases an unsent reservation.
int ff_zc_alloc(FfStack& st, std::size_t len, FfZcBuf* out);
std::int64_t ff_zc_send(FfStack& st, int fd, FfZcBuf& zc, std::size_t len,
                        const FfSockAddrIn& to);
int ff_zc_abort(FfStack& st, FfZcBuf& zc);

// Zero-copy RX (TCP and UDP). ff_zc_recv pops up to out.size() queued
// receive slices as exactly-bounded READ-ONLY capability loans into the RX
// mbuf data rooms — the bytes are never copied through a socket buffer.
// Returns loans filled, 0 at EOF, -EAGAIN when nothing is queued, or
// -errno. Each loan must be returned with ff_zc_recycle (the ONLY path by
// which the data room goes back to the pool); a double recycle or forged
// token is -EINVAL. ff_zc_recycle_batch recycles a whole burst and returns
// the number recycled.
std::int64_t ff_zc_recv(FfStack& st, int fd, std::span<FfZcRxBuf> out);
/// UDP loan bursts honor the recvmmsg-style FfMsgBatchOpts::timeout_ns
/// (see ff_recvmsg_batch); TCP sockets ignore the opts.
std::int64_t ff_zc_recv(FfStack& st, int fd, std::span<FfZcRxBuf> out,
                        const FfMsgBatchOpts& opts);
int ff_zc_recycle(FfStack& st, FfZcRxBuf& zc);
std::int64_t ff_zc_recycle_batch(FfStack& st, std::span<FfZcRxBuf> zcs);

int ff_close(FfStack& st, int fd);

// ------------------------------------------------------------------ v7 QoS
/// Assign fd's flow to TX traffic class `cls` (0 = default/bulk ..
/// kQosClasses-1 = highest; see qos.hpp). Listeners propagate the class to
/// subsequently accepted children. 0, -EBADF, or -EINVAL.
int ff_set_class(FfStack& st, int fd, std::uint32_t cls);

// epoll (the mechanism the paper ported iperf3 onto).
int ff_epoll_create(FfStack& st);
int ff_epoll_ctl(FfStack& st, int epfd, EpollOp op, int fd,
                 std::uint32_t events, std::uint64_t data);
int ff_epoll_wait(FfStack& st, int epfd, std::span<FfEpollEvent> events);
/// Multishot wait: arm ONCE with a caller-provided capability ring (layout
/// in event_ring.hpp; capacity must be a power of two); the stack's main
/// loop then publishes readiness batches into the ring across iterations
/// with no further call — and, in Scenario 2, no further compartment
/// crossing. Returns events published immediately, or -errno. Re-arming
/// replaces the ring and republishes.
int ff_epoll_wait_multishot(FfStack& st, int epfd,
                            const machine::CapView& ring,
                            std::uint32_t capacity);
int ff_epoll_cancel_multishot(FfStack& st, int epfd);

// ---------------------------------------------------------------- v3 uring
// The unified ring boundary (see fstack/uring.hpp for the ABI and the
// v2 -> v3 table above for the opcode mapping).

/// Arm: delegate a caller-initialized FfUring region (one crossing, whole
/// ring validated once). Returns a positive ring id or -errno.
int ff_uring_attach(FfStack& st, const machine::CapView& mem,
                    std::uint32_t sq_capacity, std::uint32_t cq_capacity);
/// Disarm: end the stack's use of the delegated ring capability.
int ff_uring_detach(FfStack& st, int id);
/// The doorbell crossing: kick an immediate drain. Only needed when the SQ
/// went empty->non-empty while the stack reported itself parked; a polling
/// stack drains every iteration on its own. Returns SQEs consumed.
int ff_uring_doorbell(FfStack& st, int id);

// ---- v9: per-tenant quotas (tenant.hpp has the quota-knob reference) ----

/// Register a tenant under `quota`; returns its id (>= 1). Id 0 is the
/// reserved unlimited/uncounted context every pre-v9 caller implicitly
/// uses — never returned here.
int ff_tenant_register(FfStack& st, std::string name,
                       const TenantQuota& quota);
/// Move fd into tenant `tid` (0 detaches it). -EMFILE past the tenant's
/// socket cap; TCP listeners pass the tenant to future accepted children.
int ff_set_tenant(FfStack& st, int fd, int tid);
/// Bind an attached ring to a tenant: weighted SQ drain, adopted charging
/// context for its ops, CQ-stall accounting against the tenant's cap.
int ff_uring_bind_tenant(FfStack& st, int ring_id, int tid);
/// Hard-evict a tenant: detach its rings, abort+close its sockets, reclaim
/// every loan/reservation/parked frame back to baseline. Neighbours are
/// untouched; the tenant's stats row survives for the census.
int ff_tenant_evict(FfStack& st, int tid);
/// The tenant's live gauges and per-cause counters (nullptr: unknown id).
const TenantStats* ff_tenant_stats(const FfStack& st, int tid);

/// One iteration of the F-Stack main loop: process ring buffers of the
/// DPDK driver, then run the user-defined function (paper §III-B).
template <typename UserFn>
bool ff_run_once(FfStack& st, UserFn&& user_fn) {
  const bool progress = st.run_once();
  return static_cast<bool>(user_fn()) || progress;
}

}  // namespace cherinet::fstack
