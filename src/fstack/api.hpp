// The F-Stack-compatible public API, CHERI-ported.
//
// F-Stack exposes ff_socket()/ff_write()/... mirroring the BSD socket API so
// applications port with minimal changes (paper §III-B). The CHERI port
// changes exactly the pointer-carrying signatures — the paper's example:
//
//   - ssize_t ff_write(int fd, const void*              buf, size_t nbytes);
//   + ssize_t ff_write(int fd, const void* __capability buf, size_t nbytes);
//
// Here the capability-qualified pointer is machine::CapView: a bounded,
// permission-carrying buffer handle validated on every dereference. This
// header is the surface Table I's "modified LoC" census counts.
#pragma once

#include <cstdint>

#include "fstack/stack.hpp"

namespace cherinet::fstack {

inline constexpr int kAfInet = 2;
inline constexpr int kSockStream = 1;
inline constexpr int kSockDgram = 2;

/// sockaddr_in analogue (host byte order).
struct FfSockAddrIn {
  Ipv4Addr ip{};
  std::uint16_t port = 0;
};

/// Create a socket. Returns fd (>= 3) or -errno.
int ff_socket(FfStack& st, int domain, int type, int protocol);

int ff_bind(FfStack& st, int fd, const FfSockAddrIn& addr);
int ff_listen(FfStack& st, int fd, int backlog);
/// Non-blocking accept: fd, -EAGAIN when the queue is empty.
int ff_accept(FfStack& st, int fd, FfSockAddrIn* peer);
/// Non-blocking connect: -EINPROGRESS, completion via ff_epoll (EPOLLOUT).
int ff_connect(FfStack& st, int fd, const FfSockAddrIn& addr);

/// Capability-qualified write: queues into the socket send buffer.
/// Returns bytes queued, -EAGAIN when the buffer is full, or -errno.
std::int64_t ff_write(FfStack& st, int fd, const machine::CapView& buf,
                      std::size_t nbytes);
/// Capability-qualified read. Returns bytes, 0 at EOF, or -errno.
std::int64_t ff_read(FfStack& st, int fd, const machine::CapView& buf,
                     std::size_t nbytes);

std::int64_t ff_sendto(FfStack& st, int fd, const machine::CapView& buf,
                       std::size_t nbytes, const FfSockAddrIn& to);
std::int64_t ff_recvfrom(FfStack& st, int fd, const machine::CapView& buf,
                         std::size_t nbytes, FfSockAddrIn* from);

int ff_close(FfStack& st, int fd);

// epoll (the mechanism the paper ported iperf3 onto).
int ff_epoll_create(FfStack& st);
int ff_epoll_ctl(FfStack& st, int epfd, EpollOp op, int fd,
                 std::uint32_t events, std::uint64_t data);
int ff_epoll_wait(FfStack& st, int epfd, std::span<FfEpollEvent> events);

/// One iteration of the F-Stack main loop: process ring buffers of the
/// DPDK driver, then run the user-defined function (paper §III-B).
template <typename UserFn>
bool ff_run_once(FfStack& st, UserFn&& user_fn) {
  const bool progress = st.run_once();
  return static_cast<bool>(user_fn()) || progress;
}

}  // namespace cherinet::fstack
