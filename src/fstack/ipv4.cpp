#include "fstack/ipv4.hpp"

#include <algorithm>

namespace cherinet::fstack {

std::vector<FragmentPlan> plan_fragments(std::size_t total_len,
                                         std::size_t mtu,
                                         std::size_t ip_hlen) {
  std::vector<FragmentPlan> plan;
  const std::size_t max_payload = (mtu - ip_hlen) / 8 * 8;  // 8-byte units
  if (total_len <= mtu - ip_hlen) {
    plan.push_back(FragmentPlan{0, static_cast<std::uint16_t>(total_len),
                                false});
    return plan;
  }
  std::size_t off = 0;
  while (off < total_len) {
    const std::size_t n = std::min(max_payload, total_len - off);
    const bool more = off + n < total_len;
    plan.push_back(FragmentPlan{static_cast<std::uint16_t>(off),
                                static_cast<std::uint16_t>(n), more});
    off += n;
  }
  return plan;
}

std::optional<std::vector<std::byte>> FragReassembler::input(
    const Ipv4Header& h, std::span<const std::byte> payload, sim::Ns now) {
  expire(now);
  const Key key{h.src.value, h.dst.value, h.id, h.proto};
  Partial& p = parts_[key];
  if (parts_.size() > cfg_.max_datagrams) {
    parts_.erase(key);
    ++stats_.dropped;
    return std::nullopt;
  }
  p.deadline = now + cfg_.timeout;

  const std::uint16_t off = h.frag_offset_bytes();
  if (static_cast<std::size_t>(off) + payload.size() >
      cfg_.max_datagram_bytes) {
    parts_.erase(key);
    ++stats_.dropped;
    return std::nullopt;
  }
  p.frags.emplace(off,
                  std::vector<std::byte>(payload.begin(), payload.end()));
  if (!h.more_fragments()) {
    p.total_len = static_cast<std::size_t>(off) + payload.size();
  }

  if (!p.total_len) return std::nullopt;
  // Check contiguity from 0 to total_len.
  std::size_t cursor = 0;
  for (const auto& [foff, bytes] : p.frags) {
    if (foff > cursor) return std::nullopt;  // hole
    cursor = std::max(cursor, static_cast<std::size_t>(foff) + bytes.size());
  }
  if (cursor < *p.total_len) return std::nullopt;

  std::vector<std::byte> out(*p.total_len);
  for (const auto& [foff, bytes] : p.frags) {
    const std::size_t n =
        std::min(bytes.size(), out.size() - std::min<std::size_t>(foff, out.size()));
    std::copy_n(bytes.begin(), n, out.begin() + foff);
  }
  parts_.erase(key);
  ++stats_.reassembled;
  return out;
}

void FragReassembler::expire(sim::Ns now) {
  for (auto it = parts_.begin(); it != parts_.end();) {
    if (now >= it->second.deadline) {
      it = parts_.erase(it);
      ++stats_.expired;
    } else {
      ++it;
    }
  }
}

}  // namespace cherinet::fstack
