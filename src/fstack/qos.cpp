#include "fstack/qos.hpp"

#include <algorithm>

namespace cherinet::fstack {

void QosScheduler::configure(const QosConfig& cfg) {
  cfg_ = cfg;
  for (QosClassConfig& cc : cfg_.cls) {
    cc.quantum_bytes = std::max(cc.quantum_bytes, 1u);  // DRR must converge
    if (cc.queue_cap == 0) cc.queue_cap = 1;
  }
  for (std::size_t c = 0; c < kQosClasses; ++c) {
    cls_[c].tokens = static_cast<double>(cfg_.cls[c].burst_bytes);
    cls_[c].last_fill = sim::Ns{0};
    cls_[c].deficit = 0;
  }
}

bool QosScheduler::enqueue(std::uint8_t cls, updk::Mbuf* chain,
                           std::uint32_t bytes) {
  ClassQ& cq = cls_.at(cls);
  if (cq.q.size() >= cfg_.cls[cls].queue_cap) return false;
  cq.q.push_back(Waiting{chain, bytes});
  ++staged_;
  stats_.enqueued[cls]++;
  return true;
}

updk::Mbuf* QosScheduler::evict_oldest(std::uint8_t cls) {
  ClassQ& cq = cls_.at(cls);
  if (cq.q.empty()) return nullptr;
  updk::Mbuf* chain = cq.q.front().chain;
  cq.q.pop_front();
  --staged_;
  return chain;
}

void QosScheduler::refill(ClassQ& cq, const QosClassConfig& cc, sim::Ns now) {
  if (cc.rate_bytes_per_sec == 0) return;
  if (now > cq.last_fill) {
    const double dt = static_cast<double>((now - cq.last_fill).count()) * 1e-9;
    cq.tokens = std::min(cq.tokens + dt * static_cast<double>(cc.rate_bytes_per_sec),
                         static_cast<double>(cc.burst_bytes));
  }
  cq.last_fill = now;
}

std::size_t QosScheduler::select(sim::Ns now, std::span<Picked> out) {
  if (staged_ == 0 || out.empty()) return 0;
  for (std::size_t c = 0; c < kQosClasses; ++c) refill(cls_[c], cfg_.cls[c], now);

  std::size_t n = 0;
  bool keep_rounding = true;
  while (n < out.size() && keep_rounding) {
    keep_rounding = false;
    stats_.drr_rounds++;
    for (int c = kQosClasses - 1; c >= 0; --c) {
      ClassQ& cq = cls_[static_cast<std::size_t>(c)];
      const QosClassConfig& cc = cfg_.cls[static_cast<std::size_t>(c)];
      if (cq.q.empty()) {
        cq.deficit = 0;  // classic DRR: an idle class banks nothing
        continue;
      }
      cq.deficit += cc.quantum_bytes;
      bool token_blocked = false;
      while (n < out.size() && !cq.q.empty()) {
        const Waiting& f = cq.q.front();
        if (cq.deficit < static_cast<std::int64_t>(f.bytes)) break;
        if (cc.rate_bytes_per_sec != 0 &&
            cq.tokens < static_cast<double>(f.bytes)) {
          token_blocked = true;
          stats_.throttled[static_cast<std::size_t>(c)]++;
          break;
        }
        cq.deficit -= f.bytes;
        if (cc.rate_bytes_per_sec != 0) cq.tokens -= f.bytes;
        out[n++] = Picked{f.chain, f.bytes, static_cast<std::uint8_t>(c)};
        stats_.sent[static_cast<std::size_t>(c)]++;
        cq.q.pop_front();
        --staged_;
        keep_rounding = true;
      }
      // A class still deficit-limited (not bucket-limited) earns more next
      // round — keep rounding so an over-quantum frame eventually clears.
      if (!cq.q.empty() && !token_blocked &&
          cq.deficit < static_cast<std::int64_t>(cq.q.front().bytes)) {
        keep_rounding = true;
      }
    }
  }
  return n;
}

void QosScheduler::unselect(std::span<const Picked> rejected) {
  for (std::size_t i = rejected.size(); i-- > 0;) {
    const Picked& p = rejected[i];
    ClassQ& cq = cls_[p.cls];
    cq.q.push_front(Waiting{p.chain, p.bytes});
    ++staged_;
    cq.deficit += p.bytes;
    if (cfg_.cls[p.cls].rate_bytes_per_sec != 0) {
      cq.tokens = std::min(cq.tokens + static_cast<double>(p.bytes),
                           static_cast<double>(cfg_.cls[p.cls].burst_bytes));
    }
    stats_.sent[p.cls]--;
  }
}

std::optional<sim::Ns> QosScheduler::next_release(sim::Ns now) const {
  std::optional<sim::Ns> next;
  for (std::size_t c = 0; c < kQosClasses; ++c) {
    const ClassQ& cq = cls_[c];
    const QosClassConfig& cc = cfg_.cls[c];
    if (cq.q.empty() || cc.rate_bytes_per_sec == 0) continue;
    // Tokens accrued since last_fill but not yet folded in.
    double tokens = cq.tokens;
    if (now > cq.last_fill) {
      const double dt =
          static_cast<double>((now - cq.last_fill).count()) * 1e-9;
      tokens = std::min(tokens + dt * static_cast<double>(cc.rate_bytes_per_sec),
                        static_cast<double>(cc.burst_bytes));
    }
    const double need = static_cast<double>(cq.q.front().bytes) - tokens;
    if (need <= 0.0) {
      return now;  // eligible already: the next flush sends it
    }
    const double wait_s = need / static_cast<double>(cc.rate_bytes_per_sec);
    const sim::Ns t =
        now + sim::Ns{static_cast<std::int64_t>(wait_s * 1e9) + 1};
    if (!next || t < *next) next = t;
  }
  return next;
}

std::vector<updk::Mbuf*> QosScheduler::drain_all() {
  std::vector<updk::Mbuf*> all;
  for (ClassQ& cq : cls_) {
    for (const Waiting& w : cq.q) all.push_back(w.chain);
    cq.q.clear();
  }
  staged_ = 0;
  return all;
}

}  // namespace cherinet::fstack
