// ICMP echo (ping) support: request/reply construction and reply tracking.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "fstack/headers.hpp"

namespace cherinet::fstack {

/// Build an ICMP echo message (header + payload) with a valid checksum.
[[nodiscard]] std::vector<std::byte> build_icmp_echo(std::uint8_t type,
                                                     std::uint16_t id,
                                                     std::uint16_t seq,
                                                     std::span<const std::byte>
                                                         payload);

/// Tracks echo replies per (id, seq) for test/diagnostic pings.
class PingTracker {
 public:
  void on_reply(std::uint16_t id, std::uint16_t seq) {
    replies_[(std::uint32_t{id} << 16) | seq]++;
  }
  [[nodiscard]] std::uint64_t replies(std::uint16_t id,
                                      std::uint16_t seq) const {
    const auto it = replies_.find((std::uint32_t{id} << 16) | seq);
    return it == replies_.end() ? 0 : it->second;
  }
  [[nodiscard]] std::uint64_t total() const {
    std::uint64_t n = 0;
    for (const auto& [k, v] : replies_) n += v;
    return n;
  }

 private:
  std::map<std::uint32_t, std::uint64_t> replies_;
};

}  // namespace cherinet::fstack
