// IPv4 fragmentation and reassembly (RFC 791).
//
// TCP always sends DF-marked, MSS-sized segments, but UDP datagrams larger
// than the MTU must be fragmented; the reassembler is bounded and expires
// stale partial datagrams.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <vector>

#include "fstack/headers.hpp"
#include "sim/virtual_clock.hpp"

namespace cherinet::fstack {

/// One fragment plan entry produced by plan_fragments().
struct FragmentPlan {
  std::uint16_t payload_off = 0;  // offset into the original L4 payload
  std::uint16_t payload_len = 0;
  bool more_fragments = false;
};

/// Split an L4 payload of `total_len` into MTU-sized fragments (offsets are
/// multiples of 8 as the wire format requires).
[[nodiscard]] std::vector<FragmentPlan> plan_fragments(std::size_t total_len,
                                                       std::size_t mtu,
                                                       std::size_t ip_hlen);

class FragReassembler {
 public:
  struct Config {
    sim::Ns timeout{1'000'000'000};  // 1 s
    std::size_t max_datagrams = 64;
    std::size_t max_datagram_bytes = 65535;
  };

  FragReassembler() : FragReassembler(Config{}) {}
  explicit FragReassembler(Config cfg) : cfg_(cfg) {}

  /// Feed one fragment; returns the reassembled L4 payload when complete.
  [[nodiscard]] std::optional<std::vector<std::byte>> input(
      const Ipv4Header& h, std::span<const std::byte> payload, sim::Ns now);

  void expire(sim::Ns now);
  [[nodiscard]] std::size_t pending() const noexcept { return parts_.size(); }

  struct Stats {
    std::uint64_t reassembled = 0;
    std::uint64_t expired = 0;
    std::uint64_t dropped = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Key {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint16_t id;
    std::uint8_t proto;
    auto operator<=>(const Key&) const = default;
  };
  struct Partial {
    std::map<std::uint16_t, std::vector<std::byte>> frags;  // off -> bytes
    std::optional<std::size_t> total_len;  // known once the last frag lands
    sim::Ns deadline;
  };

  Config cfg_;
  std::map<Key, Partial> parts_;
  Stats stats_;
};

}  // namespace cherinet::fstack
