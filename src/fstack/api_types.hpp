// Value types of the public F-Stack API surface, v1 and v2.
//
// Kept separate from api.hpp so the lower layers (sockbuf, tcp_pcb, stack)
// can speak the same scatter-gather vocabulary without a dependency cycle:
// the v2 batch calls thread these types from the application, across the
// compartment boundary, down to the socket buffers.
#pragma once

#include <cstdint>
#include <span>

#include "fstack/inet.hpp"
#include "machine/cap_view.hpp"

namespace cherinet::fstack {

/// sockaddr_in analogue (host byte order).
struct FfSockAddrIn {
  Ipv4Addr ip{};
  std::uint16_t port = 0;
};

/// One scatter-gather element: a capability-qualified buffer plus the byte
/// count the call may touch. `len` may be smaller than the capability's
/// bounds; it may never be larger — the batch validation sweep faults the
/// whole call on any oversized entry before a single byte moves.
struct FfIovec {
  machine::CapView buf;
  std::size_t len = 0;
};

/// One datagram of a UDP burst (sendmmsg/recvmmsg analogue). On send,
/// `addr` is the destination and `len` the payload size; on receive the
/// stack fills `addr` with the source and `result` with the byte count.
///
/// v3 loan mode (receive only): pass the entry DEFAULT-CONSTRUCTED (`buf`
/// invalid AND `len` == 0 — the explicit opt-in) and the stack routes the
/// datagram through the zero-copy loan path instead of copying — `buf`
/// comes back as an exactly-bounded READ-ONLY capability straight into
/// the RX data room, `token` identifies the loan, and `result` is the
/// payload length. Return the loan with ff_zc_recycle (identical token
/// accounting to ff_zc_recv: the data room stays charged against the
/// socket's queue budget until recycled). Copy entries leave `token` == 0.
/// An invalid `buf` WITH a nonzero `len` is a forged destination and
/// faults the batch, exactly as in v2.
struct FfMsg {
  machine::CapView buf;
  std::size_t len = 0;
  FfSockAddrIn addr{};
  std::int64_t result = 0;
  std::uint64_t token = 0;
};

/// The whole-batch capability sweep of API v2: tag, seal, permission and
/// bounds are checked for every element BEFORE any byte moves, so a bad
/// element faults the batch atomically (no partial compartment-boundary
/// leak). Both the stack's batch entry points and the Scenario-2 proxy
/// stubs enforce the same invariant through this one helper.
inline void ff_sweep_iovecs(std::span<const FfIovec> iov,
                            cheri::Access access) {
  for (const FfIovec& e : iov) {
    if (e.len == 0) continue;
    const cheri::Capability& c = e.buf.cap();
    c.check(access, c.address(), e.len);
  }
}

/// Batch options for the UDP receive burst calls (recvmmsg analogue).
/// `timeout_ns` == 0 keeps the classic semantics: return immediately with
/// whatever is queued. With a timeout the burst COALESCES: the call answers
/// -EAGAIN until either the full batch is queued or the oldest queued
/// datagram has waited `timeout_ns`, then returns the short count — a
/// sparse sender no longer costs its receiver one wakeup per datagram, and
/// a short burst is bounded by the timeout instead of waiting for the
/// batch to fill. The same knob rides OP_ZC_RECV's a1 on UDP sockets.
struct FfMsgBatchOpts {
  std::uint64_t timeout_ns = 0;
};

/// One zero-copy RX loan: `data` is an exactly-bounded READ-ONLY capability
/// straight into the RX mbuf data room that received the bytes — no copy
/// through any socket buffer. The application reads the payload in place
/// and returns the buffer with ff_zc_recycle; until then the loaned bytes
/// stay charged against the socket's receive window. The token is consumed
/// by recycle; a reused or forged token is -EINVAL.
struct FfZcRxBuf {
  std::uint64_t token = 0;  // 0 = invalid / already recycled
  machine::CapView data;
  FfSockAddrIn from{};  // datagram source (UDP; the peer for TCP)

  [[nodiscard]] bool valid() const noexcept {
    return token != 0 && data.valid();
  }
};

/// A zero-copy TX reservation: `data` is a bounded capability directly into
/// an updk::Mbuf data room — the application writes its payload through it
/// and submits with ff_zc_send, skipping the copy through the socket layer.
/// The token is consumed by send/abort; a reused token is -EINVAL.
struct FfZcBuf {
  std::uint64_t token = 0;  // 0 = invalid / already consumed
  machine::CapView data;

  [[nodiscard]] bool valid() const noexcept {
    return token != 0 && data.valid();
  }
};

}  // namespace cherinet::fstack
