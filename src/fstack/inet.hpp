// Address types and byte-order helpers for the wire formats.
#pragma once

#include <cstdint>
#include <cstddef>
#include <functional>
#include <string>

namespace cherinet::fstack {

// Big-endian (network order) accessors over raw bytes.
inline std::uint16_t get_be16(const std::byte* p) noexcept {
  return static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(p[0]) << 8) |
      static_cast<std::uint16_t>(p[1]));
}
inline std::uint32_t get_be32(const std::byte* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}
inline void put_be16(std::byte* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::byte>(v >> 8);
  p[1] = static_cast<std::byte>(v & 0xFF);
}
inline void put_be32(std::byte* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::byte>(v >> 24);
  p[1] = static_cast<std::byte>((v >> 16) & 0xFF);
  p[2] = static_cast<std::byte>((v >> 8) & 0xFF);
  p[3] = static_cast<std::byte>(v & 0xFF);
}

/// IPv4 address, kept in host byte order internally.
struct Ipv4Addr {
  std::uint32_t value = 0;

  constexpr bool operator==(const Ipv4Addr&) const = default;
  constexpr auto operator<=>(const Ipv4Addr&) const = default;

  [[nodiscard]] static constexpr Ipv4Addr of(std::uint8_t a, std::uint8_t b,
                                             std::uint8_t c,
                                             std::uint8_t d) noexcept {
    return Ipv4Addr{(std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
                    (std::uint32_t{c} << 8) | d};
  }
  [[nodiscard]] std::string to_string() const;
  [[nodiscard]] constexpr bool is_broadcast() const noexcept {
    return value == 0xFFFFFFFFu;
  }
  [[nodiscard]] constexpr bool same_subnet(Ipv4Addr other,
                                           Ipv4Addr mask) const noexcept {
    return (value & mask.value) == (other.value & mask.value);
  }
};

/// Connection 4-tuple (demux key).
struct FourTuple {
  Ipv4Addr local_ip;
  std::uint16_t local_port = 0;
  Ipv4Addr remote_ip;
  std::uint16_t remote_port = 0;

  constexpr bool operator==(const FourTuple&) const = default;
};

struct FourTupleHash {
  std::size_t operator()(const FourTuple& t) const noexcept {
    std::uint64_t k = (std::uint64_t{t.local_ip.value} << 32) |
                      t.remote_ip.value;
    k ^= (std::uint64_t{t.local_port} << 16) ^ t.remote_port;
    return std::hash<std::uint64_t>{}(k * 0x9E3779B97F4A7C15ull);
  }
};

}  // namespace cherinet::fstack
