#include "fstack/rx_chain.hpp"

#include <algorithm>

namespace cherinet::fstack {

updk::Mbuf* bounce_into_mbuf(updk::Mempool* pool,
                             std::span<const std::byte> bytes,
                             RxStats* stats) {
  if (pool == nullptr) return nullptr;
  updk::Mbuf* fresh = pool->alloc();
  if (fresh == nullptr || fresh->tailroom() < bytes.size()) {
    if (fresh != nullptr) pool->free(fresh);
    return nullptr;
  }
  fresh->append(static_cast<std::uint32_t>(bytes.size())).write(0, bytes);
  if (stats != nullptr) {
    stats->bounce_segs++;
    stats->copied_bytes += bytes.size();
  }
  return fresh;
}

RxChain::RxChain(RxChain&& other) noexcept
    : budget_(other.budget_),
      pool_(other.pool_),
      stats_(other.stats_),
      segs_(std::move(other.segs_)),
      avail_(other.avail_),
      held_(other.held_),
      loaned_(other.loaned_) {
  other.segs_.clear();
  other.avail_ = 0;
  other.held_ = 0;
  other.loaned_ = 0;
}

RxChain& RxChain::operator=(RxChain&& other) noexcept {
  if (this != &other) {
    release_all();
    budget_ = other.budget_;
    pool_ = other.pool_;
    stats_ = other.stats_;
    segs_ = std::move(other.segs_);
    avail_ = other.avail_;
    held_ = other.held_;
    loaned_ = other.loaned_;
    other.segs_.clear();
    other.avail_ = 0;
    other.held_ = 0;
    other.loaned_ = 0;
  }
  return *this;
}

void RxChain::release_all() {
  for (Seg& s : segs_) {
    if (s.m != nullptr && pool_ != nullptr) pool_->recycle(s.m);
  }
  segs_.clear();
  avail_ = 0;
  held_ = 0;
  // Loaned charge stays accounted with its tokens; the stack recycles the
  // mbufs themselves when it tears down the loan table.
  loaned_ = 0;
}

void RxChain::retire(const Seg& s) {
  held_ = s.charge < held_ ? held_ - s.charge : 0;
  if (s.m != nullptr && pool_ != nullptr) pool_->recycle(s.m);
}

std::size_t RxChain::push_loan(const MbufSlice& s) {
  if (s.m == nullptr || s.len == 0 || pool_ == nullptr) return 0;
  const std::size_t room = s.m->room_size();
  if (window_free() == 0) return 0;
  // The advertised window already throttled the sender to window_free(),
  // so the payload fits byte-wise; the room charge may overshoot the
  // budget by at most one data room, which is the accounting slack any
  // mbuf-granular receive queue has.
  const auto take =
      static_cast<std::uint32_t>(std::min<std::size_t>(s.len, window_free()));
  pool_->retain(s.m);
  segs_.push_back(Seg{s.m, s.off, take, static_cast<std::uint32_t>(room), {}});
  avail_ += take;
  held_ += room;
  if (stats_ != nullptr) {
    stats_->loaned_segs++;
    stats_->loaned_bytes += take;
  }
  return take;
}

std::size_t RxChain::push_bytes(std::span<const std::byte> data) {
  const std::size_t take = std::min(data.size(), window_free());
  if (take == 0) return 0;
  Seg s;
  s.len = static_cast<std::uint32_t>(take);
  s.charge = static_cast<std::uint32_t>(take);
  s.copy.assign(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(take));
  segs_.push_back(std::move(s));
  avail_ += take;
  held_ += take;
  if (stats_ != nullptr) stats_->fallback_bytes += take;
  return take;
}

std::size_t RxChain::read_into(const machine::CapView& dst,
                               std::size_t dst_off, std::size_t n) {
  std::size_t done = 0;
  std::byte scratch[512];
  while (done < n && !segs_.empty()) {
    Seg& s = segs_.front();
    const std::size_t k = std::min<std::size_t>(n - done, s.len);
    if (s.m != nullptr) {
      machine::cap_copy(dst, dst_off + done, s.m->room.window(s.off, k), 0, k,
                        scratch);
    } else {
      dst.write(dst_off + done,
                std::span<const std::byte>{s.copy.data() + s.off, k});
    }
    s.off += static_cast<std::uint32_t>(k);
    s.len -= static_cast<std::uint32_t>(k);
    done += k;
    // A partially read mbuf slice keeps its whole room pinned (and
    // charged) until the last byte leaves; copy slices release per byte.
    if (s.m == nullptr) {
      held_ = k < held_ ? held_ - k : 0;
      s.charge -= static_cast<std::uint32_t>(k);
    }
    if (s.len == 0) {
      retire(s);
      segs_.pop_front();
    }
  }
  avail_ -= done;
  if (stats_ != nullptr) stats_->copied_bytes += done;
  return done;
}

std::optional<MbufSlice> RxChain::pop_loan(std::size_t* charge_out) {
  if (segs_.empty()) return std::nullopt;
  Seg& s = segs_.front();
  MbufSlice out;
  std::size_t loan_charge;
  if (s.m != nullptr) {
    out = MbufSlice{s.m, s.off, s.len};  // the chain's reference transfers
    loan_charge = s.charge;
  } else {
    // Copy-backed head (reassembled / absorbed out-of-order data): bounce
    // through a fresh mbuf so the caller still gets a recyclable loan.
    // The loan pins the FRESH room, so that is what it charges.
    updk::Mbuf* fresh = bounce_into_mbuf(
        pool_, std::span<const std::byte>{s.copy.data() + s.off, s.len},
        stats_);
    if (fresh == nullptr) return std::nullopt;
    out = MbufSlice{fresh, fresh->data_off, s.len};
    loan_charge = fresh->room_size();
  }
  avail_ -= s.len;
  held_ = s.charge < held_ ? held_ - s.charge : 0;
  loaned_ += loan_charge;
  if (charge_out != nullptr) *charge_out = loan_charge;
  segs_.pop_front();
  return out;
}

void RxChain::credit_loan(std::size_t charge) {
  loaned_ = charge < loaned_ ? loaned_ - charge : 0;
}

}  // namespace cherinet::fstack
