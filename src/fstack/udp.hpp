// UDP protocol control block: bounded datagram receive queue.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "fstack/inet.hpp"

namespace cherinet::fstack {

struct UdpDatagram {
  Ipv4Addr src;
  std::uint16_t src_port = 0;
  std::vector<std::byte> data;
};

class UdpPcb {
 public:
  explicit UdpPcb(std::size_t max_queued_bytes = 256 * 1024)
      : max_bytes_(max_queued_bytes) {}

  Ipv4Addr local_ip{};
  std::uint16_t local_port = 0;

  /// Enqueue a received datagram; drops (and counts) when over budget.
  bool deliver(UdpDatagram d) {
    if (queued_bytes_ + d.data.size() > max_bytes_) {
      ++drops_;
      return false;
    }
    queued_bytes_ += d.data.size();
    rx_.push_back(std::move(d));
    return true;
  }

  [[nodiscard]] bool readable() const noexcept { return !rx_.empty(); }
  [[nodiscard]] std::size_t queued() const noexcept { return rx_.size(); }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }

  /// Pop the oldest datagram (caller checked readable()).
  [[nodiscard]] UdpDatagram pop() {
    UdpDatagram d = std::move(rx_.front());
    rx_.pop_front();
    queued_bytes_ -= d.data.size();
    return d;
  }

 private:
  std::size_t max_bytes_;
  std::size_t queued_bytes_ = 0;
  std::deque<UdpDatagram> rx_;
  std::uint64_t drops_ = 0;
};

}  // namespace cherinet::fstack
