// UDP protocol control block: bounded datagram receive queue.
//
// v2 receive semantics: a datagram delivered from the RX burst is queued as
// a zero-copy *loan* of its mbuf data room (the pcb co-owns the buffer via
// Mempool::retain) whenever the payload lives in one data room; reassembled
// fragments fall back to copied storage. ff_recvfrom copies lazily out of
// the queue; ff_zc_recv pops whole loans.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "fstack/inet.hpp"
#include "sim/virtual_clock.hpp"
#include "updk/mempool.hpp"

namespace cherinet::fstack {

struct UdpDatagram {
  Ipv4Addr src;
  std::uint16_t src_port = 0;
  /// Delivery timestamp (stack clock) — what the recvmmsg-style burst
  /// timeout measures: a batch call coalesces until the OLDEST queued
  /// datagram has waited out FfMsgBatchOpts::timeout_ns.
  sim::Ns arrived{0};
  std::vector<std::byte> data;   // copy fallback (mbuf == nullptr)
  updk::Mbuf* mbuf = nullptr;    // loaned data room (one reference held)
  std::uint32_t off = 0;
  std::uint32_t len = 0;

  [[nodiscard]] std::size_t size() const noexcept {
    return mbuf != nullptr ? len : data.size();
  }
  /// Budget charge: a loaned datagram pins its whole data room, however
  /// few payload bytes it carries.
  [[nodiscard]] std::size_t charge() const noexcept {
    return mbuf != nullptr ? mbuf->room_size() : data.size();
  }
};

class UdpPcb {
 public:
  explicit UdpPcb(std::size_t max_queued_bytes = 256 * 1024)
      : max_bytes_(max_queued_bytes) {}
  UdpPcb(const UdpPcb&) = delete;
  UdpPcb& operator=(const UdpPcb&) = delete;
  ~UdpPcb() {
    while (!rx_.empty()) release(pop());
  }

  Ipv4Addr local_ip{};
  std::uint16_t local_port = 0;

  /// The mempool loaned datagrams recycle into (set by the owning stack).
  void set_pool(updk::Mempool* pool) noexcept { pool_ = pool; }
  [[nodiscard]] updk::Mempool* pool() const noexcept { return pool_; }

  /// Enqueue a received datagram; drops (and counts) when over budget —
  /// loans handed out through ff_zc_recv charge their whole data room
  /// against the budget until recycled, so a slow recycler throttles its
  /// own socket instead of pinning the shared mempool. A dropped loan is
  /// recycled on the spot.
  bool deliver(UdpDatagram d) {
    if (queued_charge_ + loaned_charge_ + d.charge() > max_bytes_) {
      ++drops_;
      release(std::move(d));
      return false;
    }
    queued_charge_ += d.charge();
    rx_.push_back(std::move(d));
    ++delivered_total_;
    return true;
  }

  /// Loan budget accounting (the owning stack calls these around the
  /// ff_zc_recv / ff_zc_recycle lifecycle).
  void charge_loan(std::size_t charge) noexcept { loaned_charge_ += charge; }
  void credit_loan(std::size_t charge) noexcept {
    loaned_charge_ = charge < loaned_charge_ ? loaned_charge_ - charge : 0;
  }
  [[nodiscard]] std::size_t loaned() const noexcept { return loaned_charge_; }

  [[nodiscard]] bool readable() const noexcept { return !rx_.empty(); }
  /// The oldest queued datagram (caller checked readable()) — lets the
  /// zc path attempt a bounce BEFORE popping, so a failed bounce leaves
  /// the datagram queued and -ENOBUFS retriable.
  [[nodiscard]] const UdpDatagram& front() const { return rx_.front(); }
  /// Monotonic deliveries — the readiness generation for multishot epoll.
  [[nodiscard]] std::uint64_t delivered_total() const noexcept {
    return delivered_total_;
  }
  [[nodiscard]] std::size_t queued() const noexcept { return rx_.size(); }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }

  /// Pop the oldest datagram (caller checked readable()). The caller now
  /// owns the loan reference: copy + release(), or hand it out as a
  /// ff_zc_recv token.
  [[nodiscard]] UdpDatagram pop() {
    UdpDatagram d = std::move(rx_.front());
    rx_.pop_front();
    queued_charge_ -= d.charge();
    return d;
  }

  /// Drop a popped datagram's loan reference (no-op for copy-backed ones).
  void release(UdpDatagram d) {
    if (d.mbuf != nullptr && pool_ != nullptr) pool_->recycle(d.mbuf);
  }

 private:
  std::size_t max_bytes_;
  std::size_t queued_charge_ = 0;
  std::size_t loaned_charge_ = 0;
  std::deque<UdpDatagram> rx_;
  std::uint64_t drops_ = 0;
  std::uint64_t delivered_total_ = 0;
  updk::Mempool* pool_ = nullptr;
};

}  // namespace cherinet::fstack
