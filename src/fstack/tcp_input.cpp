// TCP segment arrival processing (RFC 793 event processing, RFC 5681 fast
// retransmit/recovery with NewReno partial-ACK handling, RFC 7323
// timestamps).
#include <cerrno>
#include <cstring>

#include "fstack/tcp_pcb.hpp"

namespace cherinet::fstack {

void TcpPcb::input(const TcpHeader& h, const TcpOptions& opts,
                   std::span<const std::byte> payload) {
  counters_.segs_in++;

  switch (state_) {
    case TcpState::kClosed:
      return;  // the stack answers no-PCB segments with RST
    case TcpState::kListen:
      input_listen(h, opts);
      return;
    case TcpState::kSynSent:
      input_syn_sent(h, opts);
      return;
    default:
      break;
  }

  // Any segment from the peer (even one we go on to reject) proves the
  // connection alive: stamp the activity clock and reset the probe count.
  // The armed wheel deadline is deliberately NOT touched (lazy re-arm):
  // fire_keepalive compares against the stamp and re-arms without probing,
  // so a hot connection costs zero timer_sync churn per segment.
  if (keepalive_deadline_) {
    keepalive_probes_sent_ = 0;
    keepalive_last_activity_ = env_->tcp_now();
  }

  // ---- sequence acceptability (RFC 793 p.69) ----
  const auto rcv_wnd_now = static_cast<std::uint32_t>(rx_.window_free());
  const auto seg_len = static_cast<std::uint32_t>(payload.size()) +
                       (h.has(tcpflag::kFin) ? 1u : 0u);
  const std::uint32_t seg_end = h.seq + seg_len;
  const bool acceptable =
      seq_lt(h.seq, rcv_nxt_ + std::max(rcv_wnd_now, 1u)) &&
      seq_ge(seg_end, rcv_nxt_);
  if (!acceptable) {
    if (!h.has(tcpflag::kRst)) {
      ack_now_ = true;
      output();
    }
    return;
  }

  if (opts.timestamps && ts_on_) {
    // PAWS-lite: remember the most recent in-window timestamp for echoing.
    if (seq_le(h.seq, rcv_nxt_)) ts_recent_ = opts.timestamps->first;
  }

  if (h.has(tcpflag::kRst)) {
    error_ = ECONNRESET;
    set_state(TcpState::kClosed);
    snd_.release_all();  // RST teardown frees every retained zc TX ref
    return;
  }

  if (h.has(tcpflag::kSyn)) {
    // SYN in window on a synchronized connection: reset (RFC 793).
    abort(ECONNRESET);
    return;
  }

  if (!h.has(tcpflag::kAck)) return;

  if (state_ == TcpState::kSynReceived) {
    if (seq_le(h.ack, snd_una_) || seq_gt(h.ack, snd_nxt_)) {
      send_control(tcpflag::kRst | tcpflag::kAck);
      return;
    }
    set_state(TcpState::kEstablished);
    snd_wnd_ = std::uint32_t{h.window} << (ws_on_ ? snd_wscale_ : 0);
    snd_wl1_ = h.seq;
    snd_wl2_ = h.ack;
    if (listener != nullptr) env_->tcp_accept_ready(*listener, *this);
  }

  process_ack(h, opts);
  if (state_ == TcpState::kClosed) return;  // RST sent by ack processing
  process_payload(h, payload);
  process_fin(h, payload.size());
  output();
}

void TcpPcb::input_listen(const TcpHeader& h, const TcpOptions& opts) {
  if (h.has(tcpflag::kRst) || h.has(tcpflag::kAck) || !h.has(tcpflag::kSyn)) {
    return;  // stray segment to a listener
  }
  FourTuple child_tuple;
  child_tuple.local_ip = tuple_.local_ip;
  child_tuple.local_port = tuple_.local_port;
  // The stack fills remote ip from the IP header; ports from TCP.
  child_tuple.remote_port = h.src_port;
  child_tuple.remote_ip = pending_remote_ip;
  if (static_cast<int>(accept_queue.size()) >= std::max(backlog, 1)) {
    ++syn_backlog_drops;  // accept queue full: peer retries later
    return;
  }
  // Bounded embryonic queue: half-open children count against the backlog
  // too, so a SYN flood (or a burst arriving faster than handshakes
  // complete) cannot spawn unbounded PCBs. Dropping the SYN is safe — the
  // peer's rexmit machinery retries once earlier handshakes drain.
  if (syn_backlog >= std::max(backlog, 1)) {
    ++syn_backlog_drops;
    return;
  }

  TcpPcb* child = env_->tcp_spawn_child(*this, child_tuple);
  if (child == nullptr) return;
  child->listener = this;
  child->tuple_ = child_tuple;
  child->irs_ = h.seq;
  child->rcv_nxt_ = h.seq + 1;
  child->negotiate_options(opts, /*we_offered=*/true);
  child->iss_ = child->env_->tcp_ts_now() * 2654435761u;  // deterministic ISS
  child->snd_una_ = child->iss_;
  child->snd_nxt_ = child->iss_;
  child->snd_wnd_ = h.window;  // not scaled in SYN
  child->snd_wl1_ = h.seq;
  child->snd_wl2_ = h.seq;
  child->set_state(TcpState::kSynReceived);
  child->send_control(tcpflag::kSyn | tcpflag::kAck);
  child->arm_rexmit();
}

void TcpPcb::input_syn_sent(const TcpHeader& h, const TcpOptions& opts) {
  const bool ack_ok = h.has(tcpflag::kAck) && h.ack == iss_ + 1;
  if (h.has(tcpflag::kRst)) {
    if (ack_ok) {
      error_ = ECONNREFUSED;
      set_state(TcpState::kClosed);
    }
    return;
  }
  if (!h.has(tcpflag::kSyn) || !ack_ok) return;

  irs_ = h.seq;
  rcv_nxt_ = h.seq + 1;
  negotiate_options(opts, /*we_offered=*/true);
  snd_una_ = h.ack;
  syn_acked_ = true;
  snd_wnd_ = h.window;  // SYN windows are unscaled
  snd_wl1_ = h.seq;
  snd_wl2_ = h.ack;
  set_state(TcpState::kEstablished);
  rexmit_deadline_.reset();
  rexmit_shift_ = 0;
  ack_now_ = true;
  output();
}

void TcpPcb::process_ack(const TcpHeader& h, const TcpOptions& opts) {
  const std::uint32_t ack = h.ack;

  if (seq_gt(ack, snd_nxt_)) {  // acks data never sent
    ack_now_ = true;
    return;
  }

  // Window update (RFC 793 SND.WL1/WL2 rule) — before dup-ack detection so
  // pure window updates are not miscounted as dupacks.
  const bool window_update =
      seq_lt(snd_wl1_, h.seq) ||
      (snd_wl1_ == h.seq && seq_le(snd_wl2_, ack));
  if (window_update) {
    const auto new_wnd = std::uint32_t{h.window} << (ws_on_ ? snd_wscale_ : 0);
    if (new_wnd > 0) persist_deadline_.reset();
    snd_wnd_ = new_wnd;
    snd_wl1_ = h.seq;
    snd_wl2_ = ack;
  }

  if (seq_le(ack, snd_una_)) {
    // Duplicate ACK detection (RFC 5681 §2): no payload, window unchanged,
    // data outstanding.
    const bool dup = ack == snd_una_ && snd_una_ != snd_nxt_ &&
                     h.window == (snd_wnd_ >> (ws_on_ ? snd_wscale_ : 0));
    if (!dup) return;
    counters_.dup_acks_in++;
    if (in_recovery_) {
      cwnd_ += mss_eff_;  // inflation while the hole persists
      output();
      return;
    }
    if (++dupacks_ == 3) {
      // Fast retransmit + enter NewReno recovery.
      const std::uint32_t flight = snd_nxt_ - snd_una_;
      ssthresh_ = std::max(flight / 2, 2u * mss_eff_);
      in_recovery_ = true;
      recover_ = snd_nxt_;
      const std::size_t n =
          std::min<std::size_t>({snd_.used(), mss_eff_,
                                 static_cast<std::size_t>(flight)});
      if (n > 0) {
        send_segment(snd_una_, 0, n, tcpflag::kAck);
        counters_.fast_rexmits++;
      }
      cwnd_ = ssthresh_ + 3 * mss_eff_;
      arm_rexmit();
    } else {
      // Dupacks one and two: limited transmit (RFC 3042) — output() sees
      // the dupack count and releases up to two new segments beyond cwnd.
      output();
    }
    return;
  }

  // ---- new data acknowledged ----
  std::uint32_t acked = ack - snd_una_;
  if (!syn_acked_) {
    syn_acked_ = true;
    acked -= 1;  // SYN phantom byte
  }
  bool fin_now_acked = false;
  if (fin_sent_ && !fin_acked_ && ack == snd_nxt_) {
    fin_now_acked = true;
    acked -= 1;  // FIN phantom byte
  }
  const std::size_t consume = std::min<std::size_t>(acked, snd_.used());
  if (consume > 0) snd_.consume(consume);
  snd_una_ = ack;
  rexmit_shift_ = 0;

  // RTT sampling: prefer timestamp echo (per-ACK), fall back to timed seq.
  if (ts_on_ && opts.timestamps && opts.timestamps->second != 0) {
    const std::uint32_t ecr = opts.timestamps->second;
    const std::uint32_t now_us = env_->tcp_ts_now();
    const std::uint32_t delta_us = now_us - ecr;
    if (delta_us < 60'000'000u) {
      rtt_sample(sim::Ns{static_cast<std::int64_t>(delta_us) * 1000});
    }
    rtt_timing_ = false;
  } else if (rtt_timing_ && seq_gt(ack, rtt_seq_)) {
    rtt_sample(env_->tcp_now() - rtt_started_);
    rtt_timing_ = false;
  }

  if (in_recovery_) {
    if (seq_ge(ack, recover_)) {
      // Full recovery: deflate to ssthresh (NewReno exit).
      in_recovery_ = false;
      dupacks_ = 0;
      cwnd_ = ssthresh_;
    } else {
      // Partial ACK: retransmit the next hole, deflate by amount acked.
      const std::size_t n = std::min<std::size_t>(snd_.used(), mss_eff_);
      if (n > 0) {
        send_segment(snd_una_, 0, n, tcpflag::kAck);
        counters_.rexmits++;
      }
      cwnd_ = cwnd_ > acked ? cwnd_ - acked + mss_eff_ : mss_eff_;
      arm_rexmit();
    }
  } else {
    dupacks_ = 0;
    cc_on_new_ack(acked);
  }

  if (snd_una_ == snd_nxt_) {
    rexmit_deadline_.reset();
  } else {
    arm_rexmit();  // restart for the remaining outstanding data
  }

  if (fin_now_acked) {
    fin_acked_ = true;
    switch (state_) {
      case TcpState::kFinWait1:
        if (fin_received_) {
          enter_time_wait();
        } else {
          set_state(TcpState::kFinWait2);
        }
        break;
      case TcpState::kClosing:
        enter_time_wait();
        break;
      case TcpState::kLastAck:
        set_state(TcpState::kClosed);
        break;
      default:
        break;
    }
  }
}

void TcpPcb::process_payload(const TcpHeader& h,
                             std::span<const std::byte> payload) {
  if (payload.empty()) return;
  if (state_ != TcpState::kEstablished && state_ != TcpState::kFinWait1 &&
      state_ != TcpState::kFinWait2) {
    return;
  }
  std::uint32_t seq = h.seq;
  std::span<const std::byte> data = payload;

  if (seq_lt(seq, rcv_nxt_)) {  // head-trim retransmitted overlap
    const std::uint32_t skip = rcv_nxt_ - seq;
    if (skip >= data.size()) {
      counters_.spurious_rexmit_bytes += data.size();
      ack_now_ = true;  // full duplicate: re-ACK immediately
      return;
    }
    counters_.spurious_rexmit_bytes += skip;
    data = data.subspan(skip);
    seq = rcv_nxt_;
  }

  if (seq == rcv_nxt_) {
    // In-order delivery queues a zero-copy loan of the RX mbuf when the
    // bytes live in a single data room; reassembled fragments (and PCBs
    // with no delivering stack) fall back to a copy into the chain. Small
    // segments still loan — the room-granular window charge makes a
    // sliver flood throttle itself instead of pinning the shared pool.
    std::size_t n;
    if (const auto loan = env_->tcp_rx_loan(data); loan.has_value()) {
      n = rx_.push_loan(*loan);
    } else {
      n = rx_.push_bytes(data);
    }
    rcv_nxt_ += static_cast<std::uint32_t>(n);
    counters_.bytes_in += n;
    absorb_ooo();
    if (++segs_since_ack_ >= std::max(1u, cfg_.ack_coalesce_segments)) {
      // Stretch-ACK coalescing (TcpConfig::ack_coalesce_segments): ACK on
      // the Nth in-order segment; the delayed-ACK timer bounds the wait
      // for any shorter tail.
      ack_now_ = true;
    } else {
      schedule_ack();
    }
  } else {
    // Future segment: buffer for reassembly, signal the hole with a dupack.
    counters_.ooo_segs++;
    if (ooo_.size() < cfg_.max_ooo_segments && !ooo_.contains(seq)) {
      ooo_.emplace(seq, std::vector<std::byte>(data.begin(), data.end()));
    }
    ack_now_ = true;
  }
}

void TcpPcb::absorb_ooo() {
  while (!ooo_.empty()) {
    auto it = ooo_.begin();
    // Find any stored segment that now overlaps rcv_nxt (map is ordered by
    // raw seq, which is fine within a window's span).
    bool absorbed = false;
    for (; it != ooo_.end(); ++it) {
      const std::uint32_t seq = it->first;
      const auto len = static_cast<std::uint32_t>(it->second.size());
      if (seq_le(seq, rcv_nxt_)) {
        if (seq_gt(seq + len, rcv_nxt_)) {
          const std::uint32_t skip = rcv_nxt_ - seq;
          const std::size_t n = rx_.push_bytes(
              std::span<const std::byte>{it->second}.subspan(skip));
          rcv_nxt_ += static_cast<std::uint32_t>(n);
          counters_.bytes_in += n;
        }
        ooo_.erase(it);
        absorbed = true;
        break;
      }
    }
    if (!absorbed) break;
  }
}

void TcpPcb::process_fin(const TcpHeader& h, std::size_t payload_len) {
  if (!h.has(tcpflag::kFin) || fin_received_) return;
  const std::uint32_t fin_seq =
      h.seq + static_cast<std::uint32_t>(payload_len);
  if (fin_seq != rcv_nxt_) return;  // out of order: peer will retransmit
  rcv_nxt_ += 1;
  fin_received_ = true;
  ack_now_ = true;
  switch (state_) {
    case TcpState::kSynReceived:
    case TcpState::kEstablished:
      set_state(TcpState::kCloseWait);
      break;
    case TcpState::kFinWait1:
      // Our FIN ack status decides CLOSING vs TIME_WAIT (handled on ACK).
      if (fin_acked_) {
        enter_time_wait();
      } else {
        set_state(TcpState::kClosing);
      }
      break;
    case TcpState::kFinWait2:
      enter_time_wait();
      break;
    default:
      break;
  }
}

}  // namespace cherinet::fstack
