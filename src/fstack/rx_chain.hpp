// RxChain: the loan-based receive queue that replaces the copy through the
// receive SockBuf.
//
// v1 receive semantics copied every payload byte into a per-socket byte ring
// the moment a segment arrived — the per-packet memcpy tax the paper's
// Fig. 4 numbers ride on top of. v2 queues *references* into the RX mbuf
// data rooms instead: each in-order segment is an (mbuf, offset, length)
// slice whose buffer the chain co-owns via Mempool::retain. Bytes move at
// most once, and only when the application chooses how to receive:
//
//   * ff_read / ff_readv copy LAZILY out of the queued chain (one copy,
//     application-driven, into the caller's capability);
//   * ff_zc_recv pops whole slices as exactly-bounded read-only capability
//     loans — zero copies; Mempool::recycle is the only way a loaned data
//     room returns to the pool.
//
// Out-of-order segments and reassembled IP fragments have no single backing
// mbuf and fall back to copied storage; a copy-backed slice popped through
// ff_zc_recv bounces through a fresh mbuf so the loan lifecycle stays
// uniform.
//
// Budget accounting is in PINNED MEMORY, not payload bytes: a queued or
// loaned-out mbuf slice charges its whole data room against the receive
// budget until it is consumed/recycled, so a flood of small segments (or a
// slow recycler) throttles its own socket's advertised window instead of
// draining the shared mempool out from under every other socket.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "machine/cap_view.hpp"
#include "updk/mempool.hpp"

namespace cherinet::fstack {

/// One borrowed window into an mbuf data room.
struct MbufSlice {
  updk::Mbuf* m = nullptr;
  std::uint32_t off = 0;
  std::uint32_t len = 0;
};

/// Receive-path accounting shared by every chain of one stack instance —
/// what the RX census gates on (the zero-copy path must show zero copied
/// bytes for the loaned volume).
struct RxStats {
  std::uint64_t copied_bytes = 0;    // lazily copied out by ff_read/readv
  std::uint64_t fallback_bytes = 0;  // copy-queued (OOO absorb, reassembly)
  std::uint64_t loaned_segs = 0;     // slices queued zero-copy
  std::uint64_t loaned_bytes = 0;
  std::uint64_t bounce_segs = 0;     // copy-backed slices bounced for a loan
};

/// Bounce copy-backed receive bytes into a fresh mbuf so a ff_zc_recv
/// caller still gets a recyclable loan (TCP's RxChain and the UDP queue
/// share this — the stats the RX census gates on update in one place).
/// Returns nullptr when the pool cannot supply the buffer; the caller
/// leaves the data queued so -ENOBUFS is retriable.
updk::Mbuf* bounce_into_mbuf(updk::Mempool* pool,
                             std::span<const std::byte> bytes,
                             RxStats* stats);

class RxChain {
 public:
  RxChain() = default;
  RxChain(std::size_t budget_bytes, updk::Mempool* pool, RxStats* stats)
      : budget_(budget_bytes), pool_(pool), stats_(stats) {}
  RxChain(const RxChain&) = delete;
  RxChain& operator=(const RxChain&) = delete;
  RxChain(RxChain&& other) noexcept;
  RxChain& operator=(RxChain&& other) noexcept;
  ~RxChain() { release_all(); }

  [[nodiscard]] std::size_t capacity() const noexcept { return budget_; }
  /// Payload bytes queued and readable (not yet consumed or loaned out).
  [[nodiscard]] std::size_t used() const noexcept { return avail_; }
  /// Charge of loans currently out with the application awaiting recycle.
  [[nodiscard]] std::size_t loaned() const noexcept { return loaned_; }
  [[nodiscard]] bool empty() const noexcept { return avail_ == 0; }
  /// Receive window still offerable. Queued slices charge their whole data
  /// room; outstanding loans keep their charge until recycled.
  [[nodiscard]] std::size_t window_free() const noexcept {
    const std::size_t held = held_ + loaned_;
    return held < budget_ ? budget_ - held : 0;
  }

  /// Queue an in-order slice zero-copy (retains the mbuf; charges its data
  /// room). Clamped to the free window; returns payload bytes accepted
  /// (0 = window closed, not retained).
  std::size_t push_loan(const MbufSlice& s);

  /// Copy fallback for data with no single backing mbuf (charged at byte
  /// granularity). Clamped; returns bytes accepted.
  std::size_t push_bytes(std::span<const std::byte> data);

  /// Lazy copy-out for ff_read/ff_readv: consume up to `n` bytes into the
  /// caller capability at `dst_off`. Fully drained mbuf slices recycle on
  /// the spot (releasing their room's charge). Returns bytes copied.
  std::size_t read_into(const machine::CapView& dst, std::size_t dst_off,
                        std::size_t n);

  /// Pop the head slice for ff_zc_recv. The chain's mbuf reference moves
  /// to the caller (who must Mempool::recycle it); the slice's charge
  /// moves from held to loaned until credit_loan(). A copy-backed head
  /// bounces into a fresh mbuf from the pool — nullopt when the chain is
  /// empty or the pool cannot supply the bounce buffer. `charge_out`
  /// reports the charge the recycle must credit back.
  std::optional<MbufSlice> pop_loan(std::size_t* charge_out);

  /// The application recycled a loan of `charge`: reopen that much window.
  void credit_loan(std::size_t charge);

  /// Recycle every queued slice (teardown).
  void release_all();

 private:
  struct Seg {
    updk::Mbuf* m = nullptr;  // nullptr => copy-backed
    std::uint32_t off = 0;
    std::uint32_t len = 0;       // remaining (unconsumed) bytes
    std::uint32_t charge = 0;    // budget held until retired/recycled
    std::vector<std::byte> copy;
  };

  void retire(const Seg& s);

  std::size_t budget_ = 0;
  updk::Mempool* pool_ = nullptr;
  RxStats* stats_ = nullptr;
  std::deque<Seg> segs_;
  std::size_t avail_ = 0;   // readable payload bytes
  std::size_t held_ = 0;    // charge of queued segments
  std::size_t loaned_ = 0;  // charge of outstanding loans
};

}  // namespace cherinet::fstack
