// Per-tenant resource accounting (API v9; ROADMAP item 5 — Scenario 3).
//
// N mutually-untrusting app compartments share ONE stack compartment. The
// capability model already guarantees a tenant cannot *read or write*
// another tenant's memory; this layer extends the same bounded-delegation
// argument to the stack's SHARED resources — the mbuf pool, the per-
// iteration SQE drain budget, and the deferred-completion machinery — so a
// hostile or buggy tenant cannot exhaust what its neighbours depend on.
//
// Charging model: every resource a tenant pins is charged against its
// quota at the moment it is pinned and credited back the moment it is
// released. Over-budget requests fail SOFTLY and to the OFFENDER ONLY
// (-ENOBUFS / -EAGAIN / -EMFILE on the offending call; neighbours never
// see an error they did not earn), and every rejection lands in a
// per-cause counter so the census can prove where the pressure came from.
//
// ---------------------------------------------------------------------------
// Quota-knob reference
// ---------------------------------------------------------------------------
// TenantQuota field         resource bounded              over-budget verdict
// ----------------------    --------------------------    -------------------
// max_pool_mbufs            mbuf data rooms pinned by     -ENOBUFS
//                           this tenant across ALL causes
//                           (RX loans + zc TX reservations
//                           + ARP-parked frames)
// max_loans                 outstanding zc RX loans       -ENOBUFS
//                           (tokens not yet recycled)
// max_zc_reservations       outstanding zc TX tokens      -ENOBUFS
//                           (allocated, not yet sent or
//                           aborted)
// max_sockets               live fds owned by the tenant  -EMFILE
// sq_drain_weight           relative share of the per-    SQEs stay queued
//                           iteration 64-SQE drain        (-EAGAIN shape:
//                           budget (DRR-style; default 1) completions defer)
// max_cq_stall_rounds       drain passes a ring may sit   multishot accept /
//                           with a FULL, unreaped CQ      readiness arms are
//                           while work is pending before  evicted (the one
//                           its re-derivable subscription re-derivable
//                           state is evicted              deferred-CQE state)
//
// Every knob is 0 = unlimited, which is also the accounting applied to
// untenanted callers (tenant id 0): existing single-tenant setups see no
// behaviour change at all.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace cherinet::fstack {

/// Resource bounds for one tenant. 0 = unlimited (see the knob reference
/// above for what each field bounds and the error the offender receives).
struct TenantQuota {
  std::uint32_t max_pool_mbufs = 0;
  std::uint32_t max_loans = 0;
  std::uint32_t max_zc_reservations = 0;
  std::uint32_t max_sockets = 0;
  std::uint32_t sq_drain_weight = 1;
  std::uint32_t max_cq_stall_rounds = 0;
};

/// One tenant's live gauges + cumulative per-cause rejection counters. The
/// gauges prove eviction reclaims everything (all must read 0 afterwards);
/// the counters prove an adversary's failures were ACCOUNTED, not absorbed
/// by its neighbours.
struct TenantStats {
  // ---- gauges (current holdings) ----
  std::uint32_t pool_charged = 0;      // mbuf rooms pinned, all causes
  std::uint32_t loans_outstanding = 0; // zc RX tokens not yet recycled
  std::uint32_t zc_reservations = 0;   // zc TX tokens not yet consumed
  std::uint32_t sockets = 0;           // live fds
  std::uint32_t arp_parked = 0;        // frames parked on unresolved hops
  // ---- cumulative per-cause quota verdicts ----
  std::uint64_t pool_budget_rejects = 0;  // max_pool_mbufs hit
  std::uint64_t loan_cap_rejects = 0;     // max_loans hit
  std::uint64_t zc_cap_rejects = 0;       // max_zc_reservations hit
  std::uint64_t socket_cap_rejects = 0;   // max_sockets hit
  std::uint64_t sq_drain_throttled = 0;   // drain passes cut short by weight
  std::uint64_t cq_deferrals = 0;         // full-CQ rounds with work pending
  std::uint64_t cq_deferral_evictions = 0;  // arms dropped (stall cap hit)
  std::uint64_t sqe_errors = 0;  // per-entry verdicts on this tenant's rings
  std::uint64_t doorbells = 0;   // doorbell crossings from this tenant
  std::uint64_t evictions = 0;   // hard evictions of this tenant
};

/// The registry: tenant ids are small positive integers handed out at
/// registration; id 0 is the reserved "no tenant" (unlimited, uncounted)
/// context every pre-v9 caller implicitly uses. Rows are never erased —
/// an evicted tenant keeps its stats row so the census survives eviction.
class TenantTable {
 public:
  static constexpr int kNoTenant = 0;

  /// Register a tenant under `quota`; returns its id (>= 1).
  int register_tenant(std::string name, const TenantQuota& quota) {
    rows_.push_back(Row{std::move(name), quota, TenantStats{}});
    return static_cast<int>(rows_.size());
  }

  [[nodiscard]] bool valid(int tid) const noexcept {
    return tid >= 1 && static_cast<std::size_t>(tid) <= rows_.size();
  }
  [[nodiscard]] std::size_t count() const noexcept { return rows_.size(); }
  [[nodiscard]] const std::string& name(int tid) const {
    return rows_[static_cast<std::size_t>(tid - 1)].name;
  }
  [[nodiscard]] const TenantQuota& quota(int tid) const {
    return rows_[static_cast<std::size_t>(tid - 1)].quota;
  }
  [[nodiscard]] const TenantStats& stats(int tid) const {
    return rows_[static_cast<std::size_t>(tid - 1)].stats;
  }
  [[nodiscard]] TenantStats& mutable_stats(int tid) {
    return rows_[static_cast<std::size_t>(tid - 1)].stats;
  }
  /// The DRR weight a ring bound to `tid` drains under (untenanted: 1).
  [[nodiscard]] std::uint32_t drain_weight(int tid) const {
    if (!valid(tid)) return 1;
    const std::uint32_t w = quota(tid).sq_drain_weight;
    return w == 0 ? 1 : w;
  }

  // ---- charge/credit: false bumps the per-cause reject counter ----
  // Loans, zc reservations and parked frames each pin one mbuf data room,
  // so each charge checks its own cap AND the shared pool budget.

  bool charge_loan(int tid) {
    if (!valid(tid)) return true;
    Row& r = rows_[static_cast<std::size_t>(tid - 1)];
    if (r.quota.max_loans != 0 &&
        r.stats.loans_outstanding >= r.quota.max_loans) {
      r.stats.loan_cap_rejects++;
      return false;
    }
    if (!pool_ok(r)) return false;
    r.stats.loans_outstanding++;
    r.stats.pool_charged++;
    return true;
  }
  void credit_loan(int tid) {
    if (!valid(tid)) return;
    Row& r = rows_[static_cast<std::size_t>(tid - 1)];
    if (r.stats.loans_outstanding > 0) r.stats.loans_outstanding--;
    if (r.stats.pool_charged > 0) r.stats.pool_charged--;
  }

  bool charge_zc_reservation(int tid) {
    if (!valid(tid)) return true;
    Row& r = rows_[static_cast<std::size_t>(tid - 1)];
    if (r.quota.max_zc_reservations != 0 &&
        r.stats.zc_reservations >= r.quota.max_zc_reservations) {
      r.stats.zc_cap_rejects++;
      return false;
    }
    if (!pool_ok(r)) return false;
    r.stats.zc_reservations++;
    r.stats.pool_charged++;
    return true;
  }
  void credit_zc_reservation(int tid) {
    if (!valid(tid)) return;
    Row& r = rows_[static_cast<std::size_t>(tid - 1)];
    if (r.stats.zc_reservations > 0) r.stats.zc_reservations--;
    if (r.stats.pool_charged > 0) r.stats.pool_charged--;
  }

  bool charge_parked(int tid) {
    if (!valid(tid)) return true;
    Row& r = rows_[static_cast<std::size_t>(tid - 1)];
    if (!pool_ok(r)) return false;
    r.stats.arp_parked++;
    r.stats.pool_charged++;
    return true;
  }
  void credit_parked(int tid) {
    if (!valid(tid)) return;
    Row& r = rows_[static_cast<std::size_t>(tid - 1)];
    if (r.stats.arp_parked > 0) r.stats.arp_parked--;
    if (r.stats.pool_charged > 0) r.stats.pool_charged--;
  }

  bool charge_socket(int tid) {
    if (!valid(tid)) return true;
    Row& r = rows_[static_cast<std::size_t>(tid - 1)];
    if (r.quota.max_sockets != 0 && r.stats.sockets >= r.quota.max_sockets) {
      r.stats.socket_cap_rejects++;
      return false;
    }
    r.stats.sockets++;
    return true;
  }
  void credit_socket(int tid) {
    if (!valid(tid)) return;
    Row& r = rows_[static_cast<std::size_t>(tid - 1)];
    if (r.stats.sockets > 0) r.stats.sockets--;
  }

 private:
  struct Row {
    std::string name;
    TenantQuota quota;
    TenantStats stats;
  };

  /// The shared pool budget every room-pinning charge checks.
  static bool pool_ok(Row& r) {
    if (r.quota.max_pool_mbufs != 0 &&
        r.stats.pool_charged >= r.quota.max_pool_mbufs) {
      r.stats.pool_budget_rejects++;
      return false;
    }
    return true;
  }

  std::vector<Row> rows_;
};

}  // namespace cherinet::fstack
