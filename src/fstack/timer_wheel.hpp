// Hierarchical (cascading) timing wheel driven by the virtual clock — the
// C1M-scale replacement for walking every PCB on every loop turn.
//
// A stack serving a million mostly-idle connections has a million armed
// timers (keep-alive, TIME_WAIT, the odd RTO) of which only a handful are
// due on any given iteration. The previous FfStack::process_timers was
// O(PCBs) per turn; this wheel makes a turn O(due + slots visited): timers
// register absolute virtual-time deadlines into 4 cascading levels of 64
// slots each, and expire() touches only the slots the clock actually swept
// past (the classic Varghese & Lauck scheme, as in BSD callout wheels and
// DPDK's rte_timer).
//
// Geometry: tick = 2^19 ns (~0.52 ms), levels span ~33 ms / ~2.1 s /
// ~2.2 min / ~2.4 h; deadlines beyond the top level park on an overflow
// list that is rescanned whenever the top-level cursor advances. Keep-alive
// idle times (2 h) fit inside level 3, so the overflow list is empty in
// steady state.
//
// Correctness contract with TwoStacks::pump_until (which advances the
// virtual clock to the earliest next_deadline() when nothing progresses):
//   * deadlines map to ticks by CEILING — a timer never fires early, and
//   * next_deadline() reports the owning TICK BOUNDARY (>= the armed
//     deadline), so advancing the clock to it always fires the timer —
//     floor mapping or exact-deadline reporting would let the clock stall
//     one tick short and spin forever.
// The price is sub-tick (< 0.52 ms) firing latency, noise against every
// protocol timeout in TcpConfig.
//
// Handles are generation-tagged slab indices: cancel() on a fired or
// re-armed Id is a safe no-op, which is what the per-PCB re-sync logic in
// FfStack wants (it blindly cancels the old registration on every change).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "sim/virtual_clock.hpp"

namespace cherinet::fstack {

class TimerWheel {
 public:
  using Id = std::uint64_t;
  static constexpr Id kInvalidId = 0;

  static constexpr std::uint32_t kTickShift = 19;  // 2^19 ns per tick
  static constexpr std::uint32_t kSlotBits = 6;    // 64 slots per level
  static constexpr std::uint32_t kSlots = 1u << kSlotBits;
  static constexpr std::uint32_t kLevels = 4;

  TimerWheel() {
    slots_.assign(kLevels * kSlots, -1);
    level_min_.fill(kNoMin);
    level_dirty_.fill(false);
  }

  /// Register `cookie` to fire once `now >= deadline`. Returns a handle for
  /// cancel(); arming is O(1). Deadlines at or before the current wheel
  /// time land on a ready list fired by the next expire() call.
  Id arm(sim::Ns deadline, std::uint64_t cookie);

  /// Disarm a handle. False (harmless) when the handle already fired, was
  /// cancelled, or was re-used by a later arm (generation mismatch).
  bool cancel(Id id);

  /// Advance wheel time to `now` and fire every due timer: fn(cookie) per
  /// expiry, called after the entry is unlinked (re-arming from inside fn
  /// is safe and lands in fresh slots). Returns the number fired.
  template <typename Fn>
  std::size_t expire(sim::Ns now, Fn&& fn) {
    collect_due(now, due_scratch_);
    for (const std::uint64_t cookie : due_scratch_) fn(cookie);
    const std::size_t n = due_scratch_.size();
    due_scratch_.clear();
    return n;
  }

  /// Tick boundary of the earliest armed timer (>= its actual deadline —
  /// see the pump_until contract above); nullopt when nothing is armed.
  ///
  /// O(1) in steady state: each level (and the overflow list) caches its
  /// minimum armed tick. link() folds a new entry into the cache for free;
  /// removing the cached minimum just marks the level dirty, and the next
  /// call recomputes that one level with the first-non-empty-slot ring scan
  /// (valid because every slot entry is strictly ahead of the cursor, so
  /// ring order is deadline order). The old behaviour — re-walking the
  /// first occupied slot's whole chain on EVERY idle stall, ~92 µs with
  /// 10^6 idle timers parked in one keep-alive slot — is now paid only when
  /// the cached minimum actually left the level.
  [[nodiscard]] std::optional<sim::Ns> next_deadline() const;

  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  struct Stats {
    std::uint64_t armed = 0;
    std::uint64_t cancelled = 0;
    std::uint64_t fired = 0;
    std::uint64_t cascaded = 0;  // entries re-filed into a lower level
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  // List heads are slab indices; -1 terminates. An entry lives on exactly
  // one list, named by `list`: a level*64+slot code, or one of the
  // sentinels below.
  static constexpr std::int16_t kListFree = -3;
  static constexpr std::int16_t kListReady = -2;
  static constexpr std::int16_t kListOverflow = -1;

  struct Entry {
    std::uint64_t cookie = 0;
    std::uint64_t dl_tick = 0;  // ceil(deadline / tick)
    std::uint32_t gen = 0;
    std::int32_t prev = -1;
    std::int32_t next = -1;
    std::int16_t list = kListFree;
  };

  void link(std::int32_t idx, std::int16_t list);
  void unlink(std::int32_t idx);
  void place(std::int32_t idx);  // file by dl_tick relative to cur_tick_
  void collect_due(sim::Ns now, std::vector<std::uint64_t>& due);

  // --- next_deadline() min-tick cache ---
  // Index kLevels aliases the overflow list; kNoMin = level empty. Mutable:
  // the recompute happens lazily inside the const next_deadline().
  static constexpr std::uint64_t kNoMin = ~0ull;
  /// Cache slot a linked-list code belongs to; -1 for ready/free (the ready
  /// list needs no cache — next_deadline answers cur_tick_ when non-empty).
  [[nodiscard]] static constexpr std::int32_t cache_of(
      std::int16_t list) noexcept {
    if (list >= 0) return list >> kSlotBits;  // level index
    return list == kListOverflow ? static_cast<std::int32_t>(kLevels) : -1;
  }
  void recompute_level_min(std::uint32_t cache) const;

  [[nodiscard]] std::int32_t* head_of(std::int16_t list) {
    if (list == kListReady) return &ready_head_;
    if (list == kListOverflow) return &overflow_head_;
    return &slots_[static_cast<std::size_t>(list)];
  }

  std::vector<Entry> slab_;
  std::vector<std::int32_t> slots_;  // kLevels * kSlots heads
  std::int32_t ready_head_ = -1;
  std::int32_t overflow_head_ = -1;
  std::int32_t free_head_ = -1;
  std::uint64_t cur_tick_ = 0;
  std::size_t size_ = 0;
  Stats stats_;
  std::vector<std::uint64_t> due_scratch_;
  mutable std::array<std::uint64_t, kLevels + 1> level_min_{};
  mutable std::array<bool, kLevels + 1> level_dirty_{};
};

}  // namespace cherinet::fstack
