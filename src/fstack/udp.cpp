#include "fstack/udp.hpp"
namespace cherinet::fstack { static_assert(sizeof(UdpPcb) > 0); }
