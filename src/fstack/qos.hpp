// Classed QoS TX scheduling over the staged tx_burst (API v7).
//
// PR 5 made emission leave in one tx_burst of up to 32 chains per loop
// turn; until now that stage was a FIFO, so one bulk iperf flow could fill
// every burst slot and a latency-critical echo flow waited behind 32
// full-size frames. The QosScheduler replaces the flat stage with
// kQosClasses per-class queues drained by DEFICIT ROUND-ROBIN: every
// backlogged class earns `quantum_bytes` of deficit per round and sends
// frames while its deficit (and token bucket) covers them — bulk cannot
// monopolize the burst window, and no backlogged class ever starves.
//
// Each class also carries an optional TOKEN BUCKET rate limit
// (`rate_bytes_per_sec`, depth `burst_bytes`; 0 = unlimited): frames past
// the bucket stay queued (pacing, not loss) and become eligible as virtual
// time refills the bucket — `next_release` hands the earliest such instant
// to FfStack::next_deadline so an arbiter-driven loop wakes exactly then.
//
// Flows pick their class with ff_set_class / OP_SET_CLASS (class 0 =
// default/bulk .. kQosClasses-1 = highest; accepted connections inherit the
// listener's class). The stack's own network control traffic (ARP) rides
// the top class so impaired links keep resolving next hops.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <vector>

#include "sim/virtual_clock.hpp"

namespace cherinet::updk {
class Mbuf;
}  // namespace cherinet::updk

namespace cherinet::fstack {

inline constexpr std::uint8_t kQosClasses = 4;
/// The class the stack's own control frames (ARP) ride.
inline constexpr std::uint8_t kQosClassControl = kQosClasses - 1;

struct QosClassConfig {
  /// Token-bucket rate; 0 = unlimited (bucket ignored).
  std::uint64_t rate_bytes_per_sec = 0;
  /// Bucket depth: the largest burst a paced class may emit at once.
  std::uint32_t burst_bytes = 64 * 1024;
  /// DRR quantum: bytes of deficit earned per scheduling round.
  std::uint32_t quantum_bytes = 4096;
  /// Staged chains the class may hold (beyond it: flush, then drop-oldest).
  std::size_t queue_cap = 128;
};

struct QosConfig {
  std::array<QosClassConfig, kQosClasses> cls{};
};

class QosScheduler {
 public:
  QosScheduler() { configure(QosConfig{}); }

  /// Replace the config; refills every bucket and clears deficits (queued
  /// frames stay queued).
  void configure(const QosConfig& cfg);
  [[nodiscard]] const QosConfig& config() const noexcept { return cfg_; }

  struct Picked {
    updk::Mbuf* chain = nullptr;
    std::uint32_t bytes = 0;
    std::uint8_t cls = 0;
  };

  /// Stage one frame chain; false when the class queue is at cap (the
  /// frame was NOT taken).
  [[nodiscard]] bool enqueue(std::uint8_t cls, updk::Mbuf* chain,
                             std::uint32_t bytes);
  /// Remove and return the class's oldest staged chain (drop-oldest
  /// overflow policy); nullptr when empty.
  [[nodiscard]] updk::Mbuf* evict_oldest(std::uint8_t cls);

  /// Fill `out` with up to out.size() chains by deficit round-robin,
  /// highest class first within a round, honoring token buckets at `now`.
  /// Selected chains are REMOVED; hand back any device-refused tail with
  /// unselect (refunds tokens and deficit, restores queue order).
  std::size_t select(sim::Ns now, std::span<Picked> out);
  void unselect(std::span<const Picked> rejected);

  [[nodiscard]] std::size_t staged() const noexcept { return staged_; }
  [[nodiscard]] std::size_t staged(std::uint8_t cls) const {
    return cls_.at(cls).q.size();
  }
  /// Earliest virtual time a token-blocked frame becomes eligible; nullopt
  /// when nothing is waiting on a bucket.
  [[nodiscard]] std::optional<sim::Ns> next_release(sim::Ns now) const;
  /// Drain every queue (teardown); returns the chains in no particular
  /// order for the caller to free.
  [[nodiscard]] std::vector<updk::Mbuf*> drain_all();

  struct Stats {
    std::array<std::uint64_t, kQosClasses> enqueued{};
    std::array<std::uint64_t, kQosClasses> sent{};  // committed selections
    /// select() rounds where the class's front frame waited on its bucket.
    std::array<std::uint64_t, kQosClasses> throttled{};
    std::uint64_t drr_rounds = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Waiting {
    updk::Mbuf* chain;
    std::uint32_t bytes;
  };
  struct ClassQ {
    std::deque<Waiting> q;
    double tokens = 0.0;
    sim::Ns last_fill{0};
    std::int64_t deficit = 0;
  };
  void refill(ClassQ& cq, const QosClassConfig& cc, sim::Ns now);

  QosConfig cfg_;
  std::array<ClassQ, kQosClasses> cls_;
  std::size_t staged_ = 0;
  Stats stats_;
};

}  // namespace cherinet::fstack
