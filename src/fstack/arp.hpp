// ARP cache with pending-packet queueing.
//
// The stack queues outbound IP packets per unresolved next-hop and flushes
// them when the reply arrives; requests are rate-limited per address.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fstack/inet.hpp"
#include "nic/mac.hpp"
#include "sim/virtual_clock.hpp"

namespace cherinet::fstack {

class ArpCache {
 public:
  struct Config {
    sim::Ns entry_ttl{60'000'000'000};      // 60 s
    sim::Ns request_interval{100'000'000};  // re-request at most every 100 ms
    std::size_t max_pending_per_hop = 16;
  };

  ArpCache() : ArpCache(Config{}) {}
  explicit ArpCache(Config cfg) : cfg_(cfg) {}

  [[nodiscard]] std::optional<nic::MacAddr> lookup(Ipv4Addr ip,
                                                   sim::Ns now) const;
  void insert(Ipv4Addr ip, nic::MacAddr mac, sim::Ns now);

  /// Queue a serialized IP packet until `next_hop` resolves. Returns false
  /// (drop) when the per-hop queue is full.
  bool queue_pending(Ipv4Addr next_hop, std::vector<std::byte> ip_packet);

  /// Take all packets waiting on `ip` (called on ARP reply).
  [[nodiscard]] std::vector<std::vector<std::byte>> take_pending(Ipv4Addr ip);

  /// True if a request to `ip` should be transmitted now (rate limit).
  [[nodiscard]] bool should_request(Ipv4Addr ip, sim::Ns now);

  [[nodiscard]] std::size_t entries() const noexcept { return cache_.size(); }
  [[nodiscard]] std::size_t pending_packets() const noexcept;

 private:
  struct Entry {
    nic::MacAddr mac;
    sim::Ns expires;
  };
  struct IpHash {
    std::size_t operator()(const Ipv4Addr& a) const noexcept {
      return std::hash<std::uint32_t>{}(a.value);
    }
  };

  Config cfg_;
  std::unordered_map<Ipv4Addr, Entry, IpHash> cache_;
  std::unordered_map<Ipv4Addr, std::vector<std::vector<std::byte>>, IpHash>
      pending_;
  std::unordered_map<Ipv4Addr, sim::Ns, IpHash> last_request_;
};

}  // namespace cherinet::fstack
