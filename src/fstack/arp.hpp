// ARP cache with pending-frame parking.
//
// The stack parks outbound frames per unresolved next-hop and flushes them
// when the reply arrives; requests are rate-limited per address. Parked
// frames are MBUFS (the IP packet at data start, headroom left for the
// Ethernet header that can only be written once the MAC resolves) — not
// byte-vector copies: parking costs a pool buffer, not an unbounded heap
// allocation, and the queue is capped both in frames and in BYTES per hop
// so an unresolvable flood cannot pin the pool (drops are counted).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "fstack/inet.hpp"
#include "nic/mac.hpp"
#include "sim/virtual_clock.hpp"
#include "updk/mbuf.hpp"

namespace cherinet::fstack {

class ArpCache {
 public:
  struct Config {
    sim::Ns entry_ttl{60'000'000'000};      // 60 s
    sim::Ns request_interval{100'000'000};  // re-request at most every 100 ms
    std::size_t max_pending_per_hop = 16;
    std::size_t max_pending_bytes_per_hop = 32 * 1024;
    /// How long a hop's parked frames may wait for resolution before they
    /// are dropped (Linux neighbour-queue style): parked mbufs pin pool
    /// buffers, so an unresolvable hop must not hold them forever.
    sim::Ns pending_ttl{1'000'000'000};  // 1 s
  };

  ArpCache() : ArpCache(Config{}) {}
  explicit ArpCache(Config cfg) : cfg_(cfg) {}

  [[nodiscard]] std::optional<nic::MacAddr> lookup(Ipv4Addr ip,
                                                   sim::Ns now) const;
  void insert(Ipv4Addr ip, nic::MacAddr mac, sim::Ns now);

  /// Park one frame mbuf until `next_hop` resolves. Ownership transfers on
  /// true; false (per-hop frame or byte cap exceeded — counted in stats)
  /// leaves the mbuf with the caller to free.
  bool park(Ipv4Addr next_hop, updk::Mbuf* frame, sim::Ns now);

  /// Frames whose hop has been unresolved past pending_ttl: ownership
  /// moves to the caller (the stack frees them to its pool). Counted as
  /// expirations in stats.
  [[nodiscard]] std::vector<updk::Mbuf*> take_expired(sim::Ns now);

  /// Earliest moment a parked frame outwaits pending_ttl (nullopt when no
  /// frames are parked) — what FfStack registers into its timer wheel so
  /// expiry is deadline-driven, not polled per loop turn.
  [[nodiscard]] std::optional<sim::Ns> next_expiry() const;

  /// Take all frames waiting on `ip` (called on ARP reply). The caller
  /// owns the returned mbufs.
  [[nodiscard]] std::vector<updk::Mbuf*> take_parked(Ipv4Addr ip);

  /// Drain every parked frame (stack teardown frees them to the pool).
  [[nodiscard]] std::vector<updk::Mbuf*> take_all_parked();

  /// Take every parked frame for which `pred(mbuf)` holds, across all hops
  /// (tenant eviction: reclaim ONE tenant's parked frames while its
  /// neighbours' keep waiting for resolution). The caller owns the
  /// returned mbufs; per-hop byte accounting is adjusted.
  template <typename Pred>
  [[nodiscard]] std::vector<updk::Mbuf*> take_parked_if(Pred&& pred) {
    std::vector<updk::Mbuf*> out;
    for (auto it = pending_.begin(); it != pending_.end();) {
      Hop& hop = it->second;
      std::size_t keep = 0;
      for (updk::Mbuf* f : hop.frames) {
        if (pred(f)) {
          hop.bytes -= f->pkt_len();
          out.push_back(f);
        } else {
          hop.frames[keep++] = f;
        }
      }
      hop.frames.resize(keep);
      // hop.oldest is left as-is: it can only be pessimistic (an earlier
      // park time), so pending-TTL expiry never fires late.
      it = hop.frames.empty() ? pending_.erase(it) : std::next(it);
    }
    return out;
  }

  /// True if a request to `ip` should be transmitted now (rate limit).
  [[nodiscard]] bool should_request(Ipv4Addr ip, sim::Ns now);

  [[nodiscard]] std::size_t entries() const noexcept { return cache_.size(); }
  [[nodiscard]] std::size_t pending_packets() const noexcept;
  [[nodiscard]] std::size_t pending_bytes() const noexcept;

  struct Stats {
    std::uint64_t parked = 0;         // frames accepted into a hop queue
    std::uint64_t drops = 0;          // frames refused (hop queue capped)
    std::uint64_t dropped_bytes = 0;  // bytes those refusals carried
    std::uint64_t expired = 0;        // parked frames that outwaited the TTL
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  struct Entry {
    nic::MacAddr mac;
    sim::Ns expires;
  };
  struct Hop {
    std::vector<updk::Mbuf*> frames;
    std::size_t bytes = 0;
    sim::Ns oldest{0};  // park time of the longest-waiting frame
  };
  struct IpHash {
    std::size_t operator()(const Ipv4Addr& a) const noexcept {
      return std::hash<std::uint32_t>{}(a.value);
    }
  };

  Config cfg_;
  std::unordered_map<Ipv4Addr, Entry, IpHash> cache_;
  std::unordered_map<Ipv4Addr, Hop, IpHash> pending_;
  std::unordered_map<Ipv4Addr, sim::Ns, IpHash> last_request_;
  Stats stats_;
};

}  // namespace cherinet::fstack
