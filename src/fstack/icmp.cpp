#include "fstack/icmp.hpp"

#include "fstack/checksum.hpp"

namespace cherinet::fstack {

std::vector<std::byte> build_icmp_echo(std::uint8_t type, std::uint16_t id,
                                       std::uint16_t seq,
                                       std::span<const std::byte> payload) {
  std::vector<std::byte> msg(IcmpHeader::kSize + payload.size());
  IcmpHeader h;
  h.type = type;
  h.id = id;
  h.seq = seq;
  h.checksum = 0;
  h.serialize(msg);
  std::copy(payload.begin(), payload.end(), msg.begin() + IcmpHeader::kSize);
  const std::uint16_t ck = checksum(msg);
  put_be16(msg.data() + 2, ck);
  return msg;
}

}  // namespace cherinet::fstack
