#include "fstack/icmp.hpp"

#include "fstack/checksum.hpp"

namespace cherinet::fstack {

std::vector<std::byte> build_icmp_echo(std::uint8_t type, std::uint16_t id,
                                       std::uint16_t seq,
                                       std::span<const std::byte> payload) {
  std::vector<std::byte> msg(IcmpHeader::kSize + payload.size());
  IcmpHeader h;
  h.type = type;
  h.id = id;
  h.seq = seq;
  h.checksum = 0;
  h.serialize(msg);
  std::copy(payload.begin(), payload.end(), msg.begin() + IcmpHeader::kSize);
  // Composable-checksum idiom shared with the TCP/UDP emit paths: sum the
  // 8-byte header once and fold the payload's partial in at its (even)
  // offset, instead of a second full walk over the zero-stuffed message.
  std::uint32_t sum =
      checksum_partial(std::span<const std::byte>{msg.data(), IcmpHeader::kSize});
  sum = checksum_partial_at(payload, IcmpHeader::kSize, sum);
  put_be16(msg.data() + 2, checksum_finish(sum));
  return msg;
}

}  // namespace cherinet::fstack
