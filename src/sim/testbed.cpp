#include "sim/testbed.hpp"

// Constants are header-only; this TU anchors the library target.
namespace cherinet::sim {
static_assert(sizeof(Testbed) > 0);
}  // namespace cherinet::sim
