// Conservative virtual-time arbiter.
//
// Every polling loop in the testbed (DPDK-style stack main loops, peer
// hosts, latency probes) registers as a participant. A participant that
// finds no work parks with its next deadline (earliest pending TCP timer,
// earliest wire delivery, ...). Once *all* participants are parked the
// arbiter advances the virtual clock to the earliest announced deadline and
// wakes everyone; a producer that hands work to another thread calls kick()
// so consumers re-poll instead of sleeping through the handoff.
//
// This is the standard conservative co-simulation scheme: virtual time only
// advances when no participant can make progress at the current instant, so
// wire pacing and protocol timers interleave exactly as on the real testbed.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/virtual_clock.hpp"

namespace cherinet::sim {

/// Thrown when every participant parks with no deadline: the simulation can
/// never progress again (a lost wakeup or a protocol deadlock in a test).
class SimDeadlock : public std::runtime_error {
 public:
  explicit SimDeadlock(const std::string& what) : std::runtime_error(what) {}
};

class TimeArbiter;

/// RAII participant handle. Register one per polling thread.
class Participant {
 public:
  Participant(TimeArbiter& arb, std::string name);
  ~Participant();
  Participant(const Participant&) = delete;
  Participant& operator=(const Participant&) = delete;

  /// Capture the kick epoch *before* the final work poll. If a producer
  /// kicks between prepare() and wait(), wait() returns immediately.
  [[nodiscard]] std::uint64_t prepare() const noexcept;

  /// Park until the virtual clock reaches `deadline`, a kick arrives, or the
  /// arbiter advances time. `std::nullopt` parks without a deadline.
  /// Returns true if woken by a kick (work may be available), false if the
  /// deadline passed.
  bool wait(std::uint64_t token, std::optional<Ns> deadline);

  /// Convenience: prepare + wait in one step. Only safe when no other thread
  /// can enqueue work for this participant (e.g. single-threaded tests).
  bool idle_until(std::optional<Ns> deadline);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

 private:
  friend class TimeArbiter;
  TimeArbiter& arb_;
  std::string name_;
  std::optional<Ns> deadline_;
  bool parked_ = false;
};

/// Coordinates virtual-time advancement across all registered participants.
class TimeArbiter {
 public:
  explicit TimeArbiter(VirtualClock& clock) : clock_(clock) {}
  TimeArbiter(const TimeArbiter&) = delete;
  TimeArbiter& operator=(const TimeArbiter&) = delete;

  /// Wake all parked participants so they re-poll their work sources.
  /// Call after any cross-thread handoff (wire delivery, proxy request, ...).
  void kick() noexcept;

  /// Startup gate: virtual time will not advance until at least `n`
  /// participants have enrolled. Without this, a thread that starts first
  /// and parks alone would fast-forward the clock through protocol timers
  /// (SYN retransmission backoffs) before its peers even exist.
  void expect_participants(std::size_t n);

  [[nodiscard]] VirtualClock& clock() noexcept { return clock_; }

  /// Number of currently registered participants (for tests).
  [[nodiscard]] std::size_t participant_count() const;

 private:
  friend class Participant;
  void enroll(Participant* p);
  void retire(Participant* p);
  bool wait_impl(Participant* p, std::uint64_t token, std::optional<Ns> deadline);
  /// Pre: lock held. If all participants are parked, advance the clock to
  /// the earliest deadline and wake everyone. Throws SimDeadlock if no
  /// participant announced a deadline.
  void try_advance_locked();

  VirtualClock& clock_;
  mutable std::mutex m_;
  std::condition_variable cv_;
  std::vector<Participant*> members_;
  std::uint64_t kick_epoch_ = 0;
  std::size_t expected_ = 0;
  std::size_t peak_enrolled_ = 0;
};

}  // namespace cherinet::sim
