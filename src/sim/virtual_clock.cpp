#include "sim/virtual_clock.hpp"

namespace cherinet::sim {

void VirtualClock::advance_to(Ns t) noexcept {
  std::int64_t want = t.count();
  std::int64_t cur = now_ns_.load(std::memory_order_relaxed);
  while (cur < want &&
         !now_ns_.compare_exchange_weak(cur, want, std::memory_order_acq_rel,
                                        std::memory_order_relaxed)) {
    // `cur` reloaded by compare_exchange on failure.
  }
}

}  // namespace cherinet::sim
