// Calibrated cost model for emulated privilege crossings.
//
// The paper measures three crossing costs on Arm Morello / CheriBSD:
//   * a direct syscall (baseline processes issue `svc` straight into the OS),
//   * the musl->Intravisor trampoline, ~125 ns *on top of* a direct syscall
//     (Fig. 4: Scenario 1 vs Baseline),
//   * the cross-compartment ff_* proxy jump, ~200 ns on top of baseline
//     (Fig. 5: Scenario 2 uncontended vs Baseline).
//
// Our emulation performs the real mechanical work of each crossing (register
// frame save, capability validation, DDC/PCC swap, sealed-entry check) which
// costs real nanoseconds, but a host x86 function call is cheaper than a
// Morello exception entry. The cost model tops each crossing up to the
// Morello-measured value with a calibrated busy-spin. Pass `disabled()` to
// measure the raw emulation instead; EXPERIMENTS.md reports both.
#pragma once

#include <chrono>
#include <cstdint>

namespace cherinet::sim {

struct CostModel {
  /// Master switch: false = never spin (raw emulation costs only).
  bool enabled = true;

  /// Kernel entry/exit for a direct (non-compartmentalized) syscall.
  std::chrono::nanoseconds direct_syscall{140};

  /// Extra indirection of the musl->Intravisor trampoline over a direct
  /// syscall: state save, proxy-table dispatch, PCC/DDC reload, `blrs`
  /// sealed-pair branch and return. Paper Fig. 4: ~125 ns.
  std::chrono::nanoseconds trampoline_extra{125};

  /// Extra cost of a cross-cVM function proxy (Scenario 2 ff_* wrappers)
  /// over an intra-compartment call: sealed-entry validation + two domain
  /// switches. Paper Fig. 5 implies ~75 ns on top of the trampoline delta.
  std::chrono::nanoseconds domain_switch_extra{75};

  /// Total cost of one trampolined crossing (kernel entry + trampoline
  /// indirections). Charged ONCE per SyscallBatch envelope — batching N
  /// requests into one crossing is what amortizes this fixed cost, so it
  /// must never be charged per batched element.
  [[nodiscard]] std::chrono::nanoseconds trampoline_crossing() const noexcept {
    return direct_syscall + trampoline_extra;
  }

  /// Morello-calibrated defaults (values above).
  [[nodiscard]] static CostModel morello() noexcept { return CostModel{}; }

  /// No added cost: measure the emulation itself.
  [[nodiscard]] static CostModel disabled() noexcept {
    CostModel m;
    m.enabled = false;
    return m;
  }

  /// Burn approximately `d` of real CPU time (no-op when disabled).
  void charge(std::chrono::nanoseconds d) const noexcept;
};

}  // namespace cherinet::sim
