#include "sim/time_arbiter.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace {
// CHERINET_ARB_DEBUG=1 prints every large idle advance with the parked
// participants' deadlines — the first tool to reach for when throughput
// looks stalled.
bool arb_debug() {
  static const bool on = std::getenv("CHERINET_ARB_DEBUG") != nullptr;
  return on;
}
}  // namespace

namespace cherinet::sim {

Participant::Participant(TimeArbiter& arb, std::string name)
    : arb_(arb), name_(std::move(name)) {
  arb_.enroll(this);
}

Participant::~Participant() { arb_.retire(this); }

std::uint64_t Participant::prepare() const noexcept {
  std::lock_guard lk(arb_.m_);
  return arb_.kick_epoch_;
}

bool Participant::wait(std::uint64_t token, std::optional<Ns> deadline) {
  return arb_.wait_impl(this, token, deadline);
}

bool Participant::idle_until(std::optional<Ns> deadline) {
  return wait(prepare(), deadline);
}

void TimeArbiter::expect_participants(std::size_t n) {
  std::lock_guard lk(m_);
  expected_ = n;
}

void TimeArbiter::enroll(Participant* p) {
  {
    std::lock_guard lk(m_);
    members_.push_back(p);
    peak_enrolled_ = std::max(peak_enrolled_, members_.size());
  }
  cv_.notify_all();  // a late joiner may unblock the startup gate
}

void TimeArbiter::retire(Participant* p) {
  {
    std::lock_guard lk(m_);
    members_.erase(std::remove(members_.begin(), members_.end(), p),
                   members_.end());
    // Our departure may make everyone-else-parked true.
    if (!members_.empty()) {
      bool all_parked = std::all_of(members_.begin(), members_.end(),
                                    [](const Participant* m) { return m->parked_; });
      if (all_parked) try_advance_locked();
    }
  }
  cv_.notify_all();
}

std::size_t TimeArbiter::participant_count() const {
  std::lock_guard lk(m_);
  return members_.size();
}

void TimeArbiter::kick() noexcept {
  {
    std::lock_guard lk(m_);
    ++kick_epoch_;
  }
  cv_.notify_all();
}

bool TimeArbiter::wait_impl(Participant* p, std::uint64_t token,
                            std::optional<Ns> deadline) {
  std::unique_lock lk(m_);
  if (kick_epoch_ != token) return true;  // missed-kick race: re-poll.
  p->parked_ = true;
  p->deadline_ = deadline;
  bool all_parked = std::all_of(members_.begin(), members_.end(),
                                [](const Participant* m) { return m->parked_; });
  if (all_parked) try_advance_locked();
  bool kicked = false;
  cv_.wait(lk, [&] {
    if (kick_epoch_ != token) {
      kicked = true;
      return true;
    }
    return deadline.has_value() && clock_.now() >= *deadline;
  });
  p->parked_ = false;
  p->deadline_.reset();
  return kicked;
}

void TimeArbiter::try_advance_locked() {
  // Startup gate: don't advance until everyone announced has arrived (and
  // don't re-block during shutdown once the fleet was complete).
  if (peak_enrolled_ < expected_) return;
  std::optional<Ns> earliest;
  for (const Participant* m : members_) {
    if (m->deadline_ && (!earliest || *m->deadline_ < *earliest)) {
      earliest = m->deadline_;
    }
  }
  if (!earliest) {
    std::ostringstream os;
    os << "SimDeadlock: all " << members_.size()
       << " participants parked without a deadline:";
    for (const Participant* m : members_) os << ' ' << m->name();
    throw SimDeadlock(os.str());
  }
  if (*earliest > clock_.now()) {
    if (arb_debug() && *earliest - clock_.now() > Ns{1'000'000}) {
      std::fprintf(stderr, "[arb] advance %+.3fms @%.3fms:",
                   (*earliest - clock_.now()).count() / 1e6,
                   clock_.now().count() / 1e6);
      for (const Participant* m : members_) {
        if (m->deadline_) {
          std::fprintf(stderr, " %s=+%.3fms", m->name().c_str(),
                       (*m->deadline_ - clock_.now()).count() / 1e6);
        } else {
          std::fprintf(stderr, " %s=inf", m->name().c_str());
        }
      }
      std::fprintf(stderr, "\n");
    }
    clock_.advance_to(*earliest);
  }
  ++kick_epoch_;  // force every waiter to re-evaluate
  cv_.notify_all();
}

}  // namespace cherinet::sim
