// Physical constants of the emulated Morello + Intel 82576 testbed.
//
// Calibration rationale (see DESIGN.md §3):
//  * Each 82576 port is 1 GbE. Wire occupancy per Ethernet frame is
//    preamble(8) + frame(14 hdr + payload + 4 FCS) + inter-frame gap(12).
//    With MSS 1448 (TCP timestamps on, as on FreeBSD/CheriBSD) a full-size
//    data segment occupies 1538 wire bytes carrying 1448 payload bytes:
//    goodput ceiling = 1e9 * 1448/1538 = 941.5 Mbit/s — the paper's
//    94.1 % single-port efficiency.
//  * The dual-port card sits behind one PCI bus. The paper measures per-port
//    plateaus of 658 Mbit/s (server/RX) and 757 Mbit/s (client/TX) when both
//    ports are active and attributes them to "hardware limitations imposed
//    by the PCI NIC". We model this as direction-dependent aggregate caps on
//    DMA wire-bytes: 2 * 658e6 * (1538/1448) = 1.3978 Gbit/s for RX and
//    2 * 757e6 * (1538/1448) = 1.6082 Gbit/s for TX, arbitrated round-robin
//    across ports.
#pragma once

#include <chrono>
#include <cstdint>

namespace cherinet::sim {

struct Testbed {
  // --- per-port wire ---
  double wire_bits_per_sec = 1e9;
  std::uint32_t preamble_bytes = 8;
  std::uint32_t ifg_bytes = 12;
  std::uint32_t fcs_bytes = 4;
  std::chrono::nanoseconds wire_latency{2'000};  // cable + PHY, per direction

  // --- shared host bus (PCI) across both ports of the card ---
  double bus_rx_bits_per_sec = 1.3978e9;
  double bus_tx_bits_per_sec = 1.6082e9;

  // --- L2/L3 defaults ---
  std::uint16_t mtu = 1500;
  std::uint16_t mss = 1448;  // 1500 - 20 IP - 20 TCP - 12 timestamp option

  /// Wire occupancy of one frame whose on-the-wire size (hdr+payload, no
  /// FCS) is `frame_bytes`.
  [[nodiscard]] std::uint64_t wire_overhead_bytes() const noexcept {
    return preamble_bytes + ifg_bytes + fcs_bytes;
  }

  [[nodiscard]] static Testbed morello_82576() noexcept { return Testbed{}; }

  /// An idealized testbed without the PCI bottleneck (for unit tests).
  [[nodiscard]] static Testbed unconstrained() noexcept {
    Testbed t;
    t.bus_rx_bits_per_sec = 1e12;
    t.bus_tx_bits_per_sec = 1e12;
    return t;
  }
};

}  // namespace cherinet::sim
