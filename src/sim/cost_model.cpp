#include "sim/cost_model.hpp"

namespace cherinet::sim {

void CostModel::charge(std::chrono::nanoseconds d) const noexcept {
  if (!enabled || d.count() <= 0) return;
  const auto until = std::chrono::steady_clock::now() + d;
  while (std::chrono::steady_clock::now() < until) {
    // calibrated busy wait; matches polling-mode behaviour (no yield)
  }
}

}  // namespace cherinet::sim
