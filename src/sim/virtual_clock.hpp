// Virtual (simulated) time base for the emulated testbed.
//
// Bandwidth experiments in the paper are limited by wire/bus physics, not by
// host CPU speed. We therefore account link pacing in *virtual* nanoseconds:
// the wire and PCI-bus models stamp each frame with its serialization /
// arbitration completion time and the clock advances monotonically to those
// stamps (or, when every participant is idle, to the earliest pending timer
// through the TimeArbiter). This makes goodput numbers deterministic and
// independent of the emulation host.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace cherinet::sim {

/// Nanosecond tick type used for all virtual-time arithmetic.
using Ns = std::chrono::nanoseconds;

/// Sentinel for "no deadline" (park forever until kicked).
inline constexpr Ns kNever = Ns::max();

/// Monotonic virtual clock shared by every component of one emulated testbed.
///
/// Thread-safe: readers use acquire loads; writers advance with a CAS-max so
/// the clock never moves backwards regardless of racing producers.
class VirtualClock {
 public:
  VirtualClock() = default;
  VirtualClock(const VirtualClock&) = delete;
  VirtualClock& operator=(const VirtualClock&) = delete;

  /// Current virtual time since testbed reset.
  [[nodiscard]] Ns now() const noexcept {
    return Ns{now_ns_.load(std::memory_order_acquire)};
  }

  /// Advance the clock to at least `t`. Calls racing with a later `t` win;
  /// the clock is monotone under concurrency.
  void advance_to(Ns t) noexcept;

 private:
  std::atomic<std::int64_t> now_ns_{0};
};

}  // namespace cherinet::sim
