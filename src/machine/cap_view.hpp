// CapView / CapBuf: the capability-qualified buffer handles used across the
// data plane (the `void* __capability` of the paper's modified F-Stack API).
//
// A CapView pairs a Capability with the TaggedMemory it authorizes; reads
// and writes perform the full hardware check over the accessed range once
// per operation (semantically identical to per-byte checks for contiguous
// copies, and what Morello's bulk-copy sequences achieve). window() derives
// a narrower sub-capability — passing the *smallest sufficient* view across
// a compartment boundary is the core CHERI idiom the paper advocates.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "cheri/capability.hpp"
#include "cheri/tagged_memory.hpp"

namespace cherinet::machine {

class CapView {
 public:
  CapView() = default;
  CapView(cheri::TaggedMemory* mem, cheri::Capability cap)
      : mem_(mem), cap_(cap) {}

  [[nodiscard]] bool valid() const noexcept {
    return mem_ != nullptr && cap_.tag();
  }
  [[nodiscard]] const cheri::Capability& cap() const noexcept { return cap_; }
  [[nodiscard]] cheri::TaggedMemory& mem() const noexcept { return *mem_; }
  /// Cursor address of the view.
  [[nodiscard]] std::uint64_t address() const noexcept {
    return cap_.address();
  }
  /// Bytes from cursor to top (usable length of the view).
  [[nodiscard]] std::uint64_t size() const noexcept {
    if (!cap_.tag()) return 0;
    const auto a = cap_.address();
    if (cheri::cc::U128{a} >= cap_.top()) return 0;
    return static_cast<std::uint64_t>(cap_.top() - a);
  }

  /// Checked bulk read/write at byte offset `off` from the cursor.
  void read(std::uint64_t off, std::span<std::byte> out) const {
    mem_->load(cap_, cap_.address() + off, out);
  }
  void write(std::uint64_t off, std::span<const std::byte> in) const {
    mem_->store(cap_, cap_.address() + off, in);
  }

  template <typename T>
  [[nodiscard]] T load(std::uint64_t off) const {
    return mem_->load_scalar<T>(cap_, cap_.address() + off);
  }
  template <typename T>
  void store(std::uint64_t off, T v) const {
    mem_->store_scalar<T>(cap_, cap_.address() + off, v);
  }

  /// Atomic u32 access at byte offset `off` (4-byte aligned). The event
  /// rings of multishot epoll publish their head/tail indices through
  /// these: acquire loads pair with release stores across compartments.
  [[nodiscard]] std::uint32_t atomic_load_u32(std::uint64_t off) const {
    return mem_->atomic_load_u32(cap_, cap_.address() + off);
  }
  void atomic_store_u32(std::uint64_t off, std::uint32_t v) const {
    mem_->atomic_store_u32(cap_, cap_.address() + off, v);
  }

  /// Checked capability load/store at byte offset `off` (16-byte aligned
  /// granule). The ff_uring SQ/CQ rings carry their payload capabilities —
  /// iovec grants travelling app->stack, loan grants travelling
  /// stack->app — through these: a real tagged store into ring memory, so
  /// a data overwrite (or a forged entry) clears the tag and the drain
  /// sweep sees an invalid capability instead of smuggled authority.
  [[nodiscard]] CapView load_cap(std::uint64_t off) const {
    return CapView(mem_, mem_->load_cap(cap_, cap_.address() + off));
  }
  void store_cap(std::uint64_t off, const CapView& v) const {
    mem_->store_cap(cap_, cap_.address() + off, v.cap());
  }

  /// Derive a sub-view [off, off+len) with monotonically narrowed bounds.
  [[nodiscard]] CapView window(std::uint64_t off, std::uint64_t len) const {
    return CapView(mem_, cap_.with_bounds(cap_.address() + off, len));
  }

  /// Derive a read-only variant (drops store permissions).
  [[nodiscard]] CapView readonly() const {
    return CapView(mem_, cap_.with_perms(cheri::PermSet::data_ro()));
  }

  /// Move the cursor without changing bounds.
  [[nodiscard]] CapView at(std::uint64_t off) const {
    return CapView(mem_, cap_.add(static_cast<std::int64_t>(off)));
  }

  [[nodiscard]] std::string to_string() const { return cap_.to_string(); }

 private:
  cheri::TaggedMemory* mem_ = nullptr;
  cheri::Capability cap_;
};

/// Checked copy between two views (both range checks performed).
inline void cap_copy(const CapView& dst, std::uint64_t dst_off,
                     const CapView& src, std::uint64_t src_off,
                     std::size_t n, std::span<std::byte> scratch) {
  // Copy through a bounce buffer so both capabilities are exercised; the
  // scratch span lets hot paths reuse a preallocated buffer.
  std::size_t done = 0;
  while (done < n) {
    const std::size_t chunk = std::min(n - done, scratch.size());
    src.read(src_off + done, scratch.subspan(0, chunk));
    dst.write(dst_off + done, scratch.subspan(0, chunk));
    done += chunk;
  }
}

}  // namespace cherinet::machine
