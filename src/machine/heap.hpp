// First-fit free-list allocator inside a compartment's memory region.
//
// Each cVM receives one bounded region capability from the Intravisor; its
// heap hands out sub-capabilities exactly bounded to each allocation, so a
// buffer overflow inside a compartment is caught at the *allocation*
// granularity, not just the compartment granularity (CHERI's fine-grained
// protection). Allocation metadata lives host-side: on real CHERI it would
// be in-band but unreachable through client capabilities; keeping it out of
// band models the same unreachability without biasing the data-plane
// measurements.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "cheri/capability.hpp"
#include "machine/cap_view.hpp"

namespace cherinet::machine {

class CompartmentHeap {
 public:
  /// `region` must be an unsealed RW capability; the heap allocates within
  /// [region.base, region.top).
  CompartmentHeap(cheri::TaggedMemory* mem, cheri::Capability region);

  /// Allocate `bytes` (16-byte aligned) and return a capability bounded to
  /// exactly the rounded allocation. Throws std::bad_alloc when exhausted.
  [[nodiscard]] cheri::Capability alloc(std::size_t bytes);

  /// Allocate and wrap in a CapView.
  [[nodiscard]] CapView alloc_view(std::size_t bytes) {
    return CapView(mem_, alloc(bytes));
  }

  /// Return an allocation. The capability must be one returned by alloc().
  void free(const cheri::Capability& cap);

  [[nodiscard]] std::uint64_t bytes_free() const;
  [[nodiscard]] std::uint64_t bytes_allocated() const;
  [[nodiscard]] const cheri::Capability& region() const noexcept {
    return region_;
  }

 private:
  cheri::TaggedMemory* mem_;
  cheri::Capability region_;
  mutable std::mutex mu_;
  std::map<std::uint64_t, std::uint64_t> free_;       // base -> size
  std::map<std::uint64_t, std::uint64_t> allocated_;  // base -> size
};

}  // namespace cherinet::machine
