// The single physical address space of the emulated Morello node.
//
// All compartments (cVMs), the Intravisor, DMA engines and shared regions
// live in one TaggedMemory; isolation comes exclusively from the
// capabilities each party holds (the CHERI model: no MMU in the loop).
// AddressSpace mints the root capability at "reset" and hands out carved,
// bounded regions; nothing else can create authority (provenance).
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cheri/capability.hpp"
#include "cheri/tagged_memory.hpp"

namespace cherinet::machine {

class AddressSpace {
 public:
  explicit AddressSpace(std::size_t bytes);

  [[nodiscard]] cheri::TaggedMemory& mem() noexcept { return mem_; }
  [[nodiscard]] const cheri::TaggedMemory& mem() const noexcept {
    return mem_;
  }

  /// The almighty root data capability (Intravisor boot authority only).
  [[nodiscard]] const cheri::Capability& root() const noexcept {
    return root_;
  }

  /// The root sealing capability: its address range is the otype space from
  /// which the Intravisor allocates compartment object types.
  [[nodiscard]] const cheri::Capability& sealing_root() const noexcept {
    return seal_root_;
  }

  /// Carve a fresh, 16-byte aligned region and return a capability exactly
  /// bounded to it with `perms`. Thread-safe bump allocation; regions never
  /// overlap, which is what gives compartments disjoint footprints.
  [[nodiscard]] cheri::Capability carve(std::size_t bytes,
                                        cheri::PermSet perms,
                                        std::string_view name);

  struct Region {
    std::string name;
    std::uint64_t base;
    std::uint64_t size;
  };
  [[nodiscard]] std::vector<Region> regions() const;
  [[nodiscard]] std::uint64_t bytes_carved() const;

 private:
  cheri::TaggedMemory mem_;
  cheri::Capability root_;
  cheri::Capability seal_root_;
  mutable std::mutex mu_;
  std::uint64_t brk_ = cheri::TaggedMemory::kGranule;  // keep 0 unmapped
  std::vector<Region> regions_;
};

}  // namespace cherinet::machine
