// Sealed-pair cross-compartment transitions (Morello `blrs` emulation).
//
// The Intravisor installs an *entry* per exported function: a sentry-style
// sealed code capability whose cursor points at a descriptor in tagged
// memory, paired with the target compartment's sealed context capability.
// A caller holding the pair can transition into the callee — and only
// through this gate: the pair is sealed with a compartment-specific otype,
// so it cannot be dereferenced, modified, or re-targeted (CHERI "robust
// compartmentalization" via sealing, paper §II-A).
//
// invoke() performs exactly the architectural steps: validate both halves,
// match otypes, implicitly unseal, reload DDC/PCC (ExecutionContext::Scope),
// and branch; unwinding restores the caller context even on a capability
// fault in the callee.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "cheri/capability.hpp"
#include "machine/address_space.hpp"
#include "machine/cap_view.hpp"
#include "machine/context.hpp"
#include "sim/cost_model.hpp"

namespace cherinet::machine {

/// Register-file image carried across a domain call: six integer arguments
/// plus up to two capability arguments (the hybrid-ABI argument classes the
/// paper's modified ff_* API uses).
struct CrossCallArgs {
  /// Vector-capability argument registers available to one crossing (the
  /// c2..c9 analogues of the hybrid ABI). The batched ff_* proxies move up
  /// to this many exactly-bounded iovec views per sealed-entry invocation;
  /// larger batches chunk into ceil(n / kMaxVecCaps) crossings.
  static constexpr std::size_t kMaxVecCaps = 8;

  std::uint64_t a[6] = {0, 0, 0, 0, 0, 0};
  std::optional<CapView> cap0;
  std::optional<CapView> cap1;
  std::array<std::optional<CapView>, kMaxVecCaps> caps;
};

using CrossFn = std::function<std::uint64_t(CrossCallArgs&)>;

/// The sealed code/data pair handed to callers.
struct SealedEntry {
  cheri::Capability code;  // sealed, executable, cursor = descriptor address
  cheri::Capability data;  // sealed callee context token
};

class EntryRegistry {
 public:
  /// `cost` may be null (no calibrated crossing cost).
  EntryRegistry(AddressSpace& as, const sim::CostModel* cost);

  /// Export `fn` as an entry into `target` (the callee's context, owned by
  /// its cVM and outliving the registry's use).
  [[nodiscard]] SealedEntry install(std::string name,
                                    const CompartmentContext* target,
                                    CrossFn fn);

  /// Branch to a sealed pair. Throws CapFault on any validation failure.
  std::uint64_t invoke(const SealedEntry& entry, CrossCallArgs& args);

  [[nodiscard]] std::uint64_t crossings() const noexcept {
    return crossings_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::string name;
    const CompartmentContext* target;
    CrossFn fn;
    std::uint32_t otype;
  };

  AddressSpace& as_;
  const sim::CostModel* cost_;
  cheri::Capability code_region_;   // executable region holding descriptors
  cheri::Capability table_author_;  // RW view for writing descriptors
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
  std::atomic<std::uint64_t> crossings_{0};
  std::uint32_t next_otype_ = cheri::kOtypeFirstUser;
};

}  // namespace cherinet::machine
