#include "machine/domain.hpp"

#include <stdexcept>

namespace cherinet::machine {

namespace {
constexpr std::size_t kMaxEntries = 256;
constexpr std::size_t kDescSize = cheri::TaggedMemory::kGranule;
}  // namespace

EntryRegistry::EntryRegistry(AddressSpace& as, const sim::CostModel* cost)
    : as_(as), cost_(cost) {
  // The descriptor table is the "code" the sentries point into.
  table_author_ = as_.carve(kMaxEntries * kDescSize,
                            cheri::PermSet::data_rw(), "entry-descriptors");
  code_region_ = as_.root()
                     .with_bounds(table_author_.base(),
                                  static_cast<std::uint64_t>(
                                      table_author_.length()))
                     .with_perms(cheri::PermSet::code());
}

SealedEntry EntryRegistry::install(std::string name,
                                   const CompartmentContext* target,
                                   CrossFn fn) {
  std::lock_guard lk(mu_);
  if (entries_.size() >= kMaxEntries) {
    throw std::runtime_error("EntryRegistry: descriptor table full");
  }
  const auto id = static_cast<std::uint32_t>(entries_.size());
  const std::uint32_t otype = next_otype_++;
  const std::uint64_t desc_addr = table_author_.base() + id * kDescSize;
  // The descriptor in memory records the entry id; the sentry's cursor is
  // the descriptor address, exactly like a function pointer into a stub.
  as_.mem().store_scalar<std::uint32_t>(table_author_, desc_addr, id);

  const cheri::Capability sealer =
      as_.sealing_root().with_address(otype);
  SealedEntry pair;
  pair.code = code_region_.with_address(desc_addr)
                  .with_perms(cheri::PermSet::code())
                  .seal_with(sealer);
  pair.data = target != nullptr && target->ddc.tag()
                  ? target->ddc.seal_with(sealer)
                  : as_.root().with_perms(cheri::PermSet::data_ro())
                        .seal_with(sealer);
  entries_.push_back(Entry{std::move(name), target, std::move(fn), otype});
  return pair;
}

std::uint64_t EntryRegistry::invoke(const SealedEntry& entry,
                                    CrossCallArgs& args) {
  using cheri::CapFault;
  using cheri::FaultKind;
  const cheri::Capability& code = entry.code;
  const cheri::Capability& data = entry.data;
  if (!code.tag() || !data.tag()) {
    throw CapFault(FaultKind::kTagViolation, code.address(), 0,
                   code.to_string(), "blrs: untagged sealed pair");
  }
  if (!code.is_sealed() || !data.is_sealed()) {
    throw CapFault(FaultKind::kSealViolation, code.address(), 0,
                   code.to_string(), "blrs: operands must be sealed");
  }
  if (code.otype() != data.otype()) {
    throw CapFault(FaultKind::kOtypeViolation, code.address(), 0,
                   code.to_string(), "blrs: otype mismatch between pair");
  }
  if (!code.perms().has(cheri::Perm::kExecute)) {
    throw CapFault(FaultKind::kPermitExecuteViolation, code.address(), 0,
                   code.to_string(), "blrs: code capability not executable");
  }
  if (!code.in_bounds(code.address(), sizeof(std::uint32_t))) {
    throw CapFault(FaultKind::kBoundsViolation, code.address(), 4,
                   code.to_string(), "blrs: descriptor out of bounds");
  }
  // Capability arguments must be valid, unsealed and global to cross. One
  // sweep covers the scalar pair and the vector registers — the whole
  // argument file is validated before the callee runs (atomic at the gate,
  // and allocation-free: this is the modeled ~200 ns hot path).
  const auto check_cap_arg = [](const std::optional<CapView>& cv) {
    if (!cv.has_value()) return;
    const cheri::Capability& c = cv->cap();
    if (!c.tag()) {
      throw CapFault(FaultKind::kTagViolation, c.address(), 0, c.to_string(),
                     "cross-call capability argument");
    }
    if (c.is_sealed()) {
      throw CapFault(FaultKind::kSealViolation, c.address(), 0, c.to_string(),
                     "cross-call capability argument");
    }
    if (!c.perms().has(cheri::Perm::kGlobal)) {
      throw CapFault(FaultKind::kPermitStoreCapViolation, c.address(), 0,
                     c.to_string(), "cross-call argument is compartment-local");
    }
  };
  check_cap_arg(args.cap0);
  check_cap_arg(args.cap1);
  for (const auto& cv : args.caps) check_cap_arg(cv);

  // Implicit unseal by the branch: read the descriptor through the unsealed
  // code view to find the target entry.
  const cheri::Capability sealer =
      as_.sealing_root().with_address(code.otype());
  const cheri::Capability code_unsealed = code.unseal_with(sealer);
  const auto id = as_.mem().load_scalar<std::uint32_t>(
      code_unsealed.with_perms(cheri::PermSet::code() |
                               cheri::PermSet{cheri::Perm::kLoad}),
      code_unsealed.address());

  const Entry* e = nullptr;
  {
    std::lock_guard lk(mu_);
    if (id >= entries_.size() || entries_[id].otype != code.otype()) {
      throw CapFault(FaultKind::kOtypeViolation, code.address(), 0,
                     code.to_string(), "blrs: descriptor/otype mismatch");
    }
    e = &entries_[id];
  }
  crossings_.fetch_add(1, std::memory_order_relaxed);
  if (cost_ != nullptr) cost_->charge(cost_->domain_switch_extra);
  if (e->target != nullptr) {
    ExecutionContext::Scope scope(*e->target);
    return e->fn(args);
  }
  return e->fn(args);
}

}  // namespace cherinet::machine
