#include "machine/heap.hpp"
#include <algorithm>

#include <new>
#include <stdexcept>

namespace cherinet::machine {

namespace {
constexpr std::uint64_t kAlign = cheri::TaggedMemory::kGranule;
}

CompartmentHeap::CompartmentHeap(cheri::TaggedMemory* mem,
                                 cheri::Capability region)
    : mem_(mem), region_(region) {
  if (!region_.tag() || region_.is_sealed()) {
    throw std::invalid_argument("CompartmentHeap: invalid region capability");
  }
  const auto base = region_.base();
  const auto size = static_cast<std::uint64_t>(region_.length());
  free_.emplace(base, size);
}

cheri::Capability CompartmentHeap::alloc(std::size_t bytes) {
  // Pad to the representable alignment so every allocation's capability is
  // byte-exact: an overflow faults at the allocation edge instead of
  // spilling into a rounded-over neighbour.
  const std::uint64_t align = std::max<std::uint64_t>(
      cheri::cc::representable_alignment(bytes), kAlign);
  const std::uint64_t need = (bytes + align - 1) / align * align;
  if (need == 0) throw std::bad_alloc();
  std::lock_guard lk(mu_);
  for (auto it = free_.begin(); it != free_.end(); ++it) {
    const std::uint64_t base = (it->first + align - 1) / align * align;
    const std::uint64_t pad = base - it->first;
    if (it->second < pad + need) continue;
    const std::uint64_t block_base = it->first;
    const std::uint64_t remaining = it->second - pad - need;
    free_.erase(it);
    if (pad > 0) free_.emplace(block_base, pad);
    if (remaining > 0) free_.emplace(base + need, remaining);
    allocated_.emplace(base, need);
    return region_.with_bounds_exact(base, need);
  }
  throw std::bad_alloc();
}

void CompartmentHeap::free(const cheri::Capability& cap) {
  std::lock_guard lk(mu_);
  const auto it = allocated_.find(cap.base());
  if (it == allocated_.end()) {
    throw std::invalid_argument("CompartmentHeap::free: unknown allocation");
  }
  std::uint64_t base = it->first;
  std::uint64_t size = it->second;
  allocated_.erase(it);
  // Coalesce with the next free block...
  auto next = free_.lower_bound(base);
  if (next != free_.end() && base + size == next->first) {
    size += next->second;
    next = free_.erase(next);
  }
  // ...and with the previous one.
  if (next != free_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second == base) {
      base = prev->first;
      size += prev->second;
      free_.erase(prev);
    }
  }
  free_.emplace(base, size);
}

std::uint64_t CompartmentHeap::bytes_free() const {
  std::lock_guard lk(mu_);
  std::uint64_t total = 0;
  for (const auto& [b, s] : free_) total += s;
  return total;
}

std::uint64_t CompartmentHeap::bytes_allocated() const {
  std::lock_guard lk(mu_);
  std::uint64_t total = 0;
  for (const auto& [b, s] : allocated_) total += s;
  return total;
}

}  // namespace cherinet::machine
