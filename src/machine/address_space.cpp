#include "machine/address_space.hpp"

#include <stdexcept>

namespace cherinet::machine {

AddressSpace::AddressSpace(std::size_t bytes) : mem_(bytes) {
  root_ = cheri::CapabilityMinter::mint_root(0, mem_.size(),
                                             cheri::PermSet::all());
  // Sealing root spans the user otype space; its cursor selects the otype.
  seal_root_ = cheri::CapabilityMinter::mint_root(
      cheri::kOtypeFirstUser, cheri::kOtypeMax - cheri::kOtypeFirstUser,
      cheri::PermSet{cheri::Perm::kSeal} | cheri::Perm::kUnseal |
          cheri::Perm::kGlobal);
}

cheri::Capability AddressSpace::carve(std::size_t bytes,
                                      cheri::PermSet perms,
                                      std::string_view name) {
  // Pad to the compressed-bounds representable alignment so the region
  // capability is byte-exact and regions stay disjoint (see
  // cc::representable_alignment).
  const std::uint64_t align =
      std::max<std::uint64_t>(cheri::cc::representable_alignment(bytes),
                              cheri::TaggedMemory::kGranule);
  const std::size_t rounded = (bytes + align - 1) / align * align;
  std::lock_guard lk(mu_);
  const std::uint64_t base = (brk_ + align - 1) / align * align;
  if (base + rounded > mem_.size()) {
    throw std::runtime_error("AddressSpace: out of physical memory carving " +
                             std::string(name));
  }
  brk_ = base + rounded;
  regions_.push_back(Region{std::string(name), base, rounded});
  return root_.with_bounds_exact(base, rounded).with_perms(perms);
}

std::vector<AddressSpace::Region> AddressSpace::regions() const {
  std::lock_guard lk(mu_);
  return regions_;
}

std::uint64_t AddressSpace::bytes_carved() const {
  std::lock_guard lk(mu_);
  return brk_;
}

}  // namespace cherinet::machine
