// Per-thread compartment execution context.
//
// On Morello the executing compartment is defined by two special registers:
// DDC (Default Data Capability — bounds every non-capability data access)
// and PCC (Program Counter Capability — bounds fetch). The Intravisor
// configures one context per cVM; trampolines and sealed-pair domain
// transitions swap the current context exactly where the hardware would
// reload DDC/PCC.
#pragma once

#include <cstdint>
#include <string>

#include "cheri/capability.hpp"

namespace cherinet::machine {

struct CompartmentContext {
  std::string name = "host";
  int cvm_id = -1;  // -1 = Intravisor / host world
  cheri::Capability ddc;
  cheri::Capability pcc;
};

/// Thread-local current-context manager. Scope is the only mutator, so
/// context save/restore is exception-safe by construction (a capability
/// fault unwinding through a domain transition restores the caller context,
/// like an exception return restoring DDC/PCC).
class ExecutionContext {
 public:
  /// Current context; a default host context if none was entered.
  [[nodiscard]] static const CompartmentContext& current() noexcept;
  [[nodiscard]] static bool in_compartment() noexcept;

  /// Number of context switches performed by this thread (diagnostics).
  [[nodiscard]] static std::uint64_t switch_count() noexcept;

  class Scope {
   public:
    explicit Scope(const CompartmentContext& ctx);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const CompartmentContext* saved_;
  };
};

}  // namespace cherinet::machine
