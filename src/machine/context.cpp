#include "machine/context.hpp"

namespace cherinet::machine {

namespace {
const CompartmentContext& host_context() {
  static const CompartmentContext ctx{};  // "host": no DDC restriction
  return ctx;
}
thread_local const CompartmentContext* tls_current = nullptr;
thread_local std::uint64_t tls_switches = 0;
}  // namespace

const CompartmentContext& ExecutionContext::current() noexcept {
  return tls_current != nullptr ? *tls_current : host_context();
}

bool ExecutionContext::in_compartment() noexcept {
  return tls_current != nullptr && tls_current->cvm_id >= 0;
}

std::uint64_t ExecutionContext::switch_count() noexcept {
  return tls_switches;
}

ExecutionContext::Scope::Scope(const CompartmentContext& ctx)
    : saved_(tls_current) {
  tls_current = &ctx;
  ++tls_switches;
}

ExecutionContext::Scope::~Scope() { tls_current = saved_; }

}  // namespace cherinet::machine
