#include "updk/mbuf.hpp"
namespace cherinet::updk { static_assert(sizeof(Mbuf) > 0); }
