// Bounded lock-free MPMC ring (rte_ring-style, two-phase head/tail).
//
// DPDK's rte_ring is the backbone of mempools and inter-core handoff. The
// algorithm: producers reserve slots by CAS-advancing prod.head, write
// their entries, then publish in order by advancing prod.tail once earlier
// reservations have been published; consumers mirror the scheme. Capacity
// is a power of two; one slot is never wasted because occupancy is tracked
// by index difference (indices wrap modulo 2^32).
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace cherinet::updk {

template <typename T>
class Ring {
 public:
  /// `capacity` is rounded up to a power of two.
  explicit Ring(std::size_t capacity) {
    std::size_t c = 1;
    while (c < capacity) c <<= 1;
    slots_.resize(c);
    mask_ = static_cast<std::uint32_t>(c - 1);
  }
  Ring(const Ring&) = delete;
  Ring& operator=(const Ring&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t count() const noexcept {
    return prod_tail_.load(std::memory_order_acquire) -
           cons_tail_.load(std::memory_order_acquire);
  }
  [[nodiscard]] bool empty() const noexcept { return count() == 0; }

  bool enqueue(const T& v) { return enqueue_burst({&v, 1}) == 1; }

  /// Enqueue up to in.size() items; returns how many were enqueued
  /// (all-or-nothing per reservation chunk, DPDK "variable" semantics).
  std::size_t enqueue_burst(std::span<const T> in) {
    const auto n = static_cast<std::uint32_t>(in.size());
    if (n == 0) return 0;
    std::uint32_t head = prod_head_.load(std::memory_order_relaxed);
    std::uint32_t take;
    do {
      const std::uint32_t free_slots =
          static_cast<std::uint32_t>(slots_.size()) -
          (head - cons_tail_.load(std::memory_order_acquire));
      take = std::min(n, free_slots);
      if (take == 0) return 0;
    } while (!prod_head_.compare_exchange_weak(head, head + take,
                                               std::memory_order_relaxed));
    for (std::uint32_t i = 0; i < take; ++i) {
      slots_[(head + i) & mask_] = in[i];
    }
    // Publish in reservation order.
    std::uint32_t expected = head;
    while (!prod_tail_.compare_exchange_weak(expected, head + take,
                                             std::memory_order_release)) {
      expected = head;
    }
    return take;
  }

  std::optional<T> dequeue() {
    T v{};
    return dequeue_burst({&v, 1}) == 1 ? std::optional<T>{v} : std::nullopt;
  }

  std::size_t dequeue_burst(std::span<T> out) {
    const auto n = static_cast<std::uint32_t>(out.size());
    if (n == 0) return 0;
    std::uint32_t head = cons_head_.load(std::memory_order_relaxed);
    std::uint32_t take;
    do {
      const std::uint32_t avail =
          prod_tail_.load(std::memory_order_acquire) - head;
      take = std::min(n, avail);
      if (take == 0) return 0;
    } while (!cons_head_.compare_exchange_weak(head, head + take,
                                               std::memory_order_relaxed));
    for (std::uint32_t i = 0; i < take; ++i) {
      out[i] = slots_[(head + i) & mask_];
    }
    std::uint32_t expected = head;
    while (!cons_tail_.compare_exchange_weak(expected, head + take,
                                             std::memory_order_release)) {
      expected = head;
    }
    return take;
  }

 private:
  std::vector<T> slots_;
  std::uint32_t mask_ = 0;
  alignas(64) std::atomic<std::uint32_t> prod_head_{0};
  alignas(64) std::atomic<std::uint32_t> prod_tail_{0};
  alignas(64) std::atomic<std::uint32_t> cons_head_{0};
  alignas(64) std::atomic<std::uint32_t> cons_tail_{0};
};

}  // namespace cherinet::updk
