#include "updk/pmd_e82576.hpp"

#include <stdexcept>

namespace cherinet::updk {

using nic::kRxStatusDD;
using nic::kTxCmdEOP;
using nic::kTxCmdRS;
using nic::kTxStatusDD;
using nic::RxDesc;
using nic::TxDesc;

E82576Pmd::E82576Pmd(std::string name, nic::E82576Device* dev, int port,
                     std::uint32_t queue, machine::CompartmentHeap* heap,
                     Mempool* pool, sim::VirtualClock* clock,
                     const EthConf& conf)
    : name_(std::move(name)),
      dev_(dev),
      port_(port),
      queue_(queue),
      heap_(heap),
      pool_(pool),
      clock_(clock),
      conf_(conf) {
  if (conf_.rx_ring_size == 0 || conf_.tx_ring_size == 0) {
    throw std::invalid_argument("E82576Pmd: zero ring size");
  }
  if (queue_ >= dev_->port(port_).queue_count()) {
    throw std::invalid_argument("E82576Pmd: queue not configured on port");
  }
  // Negotiate offloads: the 82576 model implements every kOffload* bit, so
  // the effective set is exactly what the configuration requested.
  offloads_ = conf_.offloads & kOffloadAll;
  setup_rx_ring();
  setup_tx_ring();
  auto& p = dev_->port(port_);
  p.set_promiscuous(conf_.promiscuous);
  p.enable();
}

void E82576Pmd::setup_rx_ring() {
  rx_ring_ = heap_->alloc_view(conf_.rx_ring_size * sizeof(RxDesc));
  rx_staged_.resize(conf_.rx_ring_size, nullptr);
  for (std::uint32_t i = 0; i < conf_.rx_ring_size; ++i) {
    Mbuf* m = pool_->alloc();
    if (m == nullptr) {
      throw std::runtime_error("E82576Pmd: pool too small for RX ring");
    }
    rx_staged_[i] = m;
    RxDesc d{};
    d.buffer_addr = m->room.address() + kMbufHeadroom;
    rx_ring_.store<RxDesc>(i * sizeof(RxDesc), d);
  }
  auto& p = dev_->port(port_);
  p.set_rx_ring(queue_, rx_ring_.address(), conf_.rx_ring_size,
                pool_->data_room() - kMbufHeadroom);
  // Leave one slot of slack: device fills up to (RDT - 1).
  p.write_rdt(queue_, conf_.rx_ring_size - 1);
}

void E82576Pmd::setup_tx_ring() {
  tx_ring_ = heap_->alloc_view(conf_.tx_ring_size * sizeof(TxDesc));
  tx_pending_.resize(conf_.tx_ring_size, nullptr);
  for (std::uint32_t i = 0; i < conf_.tx_ring_size; ++i) {
    TxDesc d{};
    d.status = kTxStatusDD;  // start reclaimable
    tx_ring_.store<TxDesc>(i * sizeof(TxDesc), d);
  }
  dev_->port(port_).set_tx_ring(queue_, tx_ring_.address(),
                                conf_.tx_ring_size);
}

std::size_t E82576Pmd::rx_burst(std::span<Mbuf*> out) {
  dev_->poll_queue(port_, queue_, clock_->now());
  std::size_t got = 0;
  while (got < out.size()) {
    RxDesc d = rx_ring_.load<RxDesc>(rx_next_ * sizeof(RxDesc));
    if ((d.status & kRxStatusDD) == 0) break;
    // Allocate the replacement *first*: if the pool is dry we leave the
    // descriptor staged (its buffer still belongs to the ring) and retry on
    // a later burst, exactly like DPDK's rx_nombuf handling.
    Mbuf* fresh = pool_->alloc();
    if (fresh == nullptr) break;
    Mbuf* filled = rx_staged_[rx_next_];
    filled->data_off = kMbufHeadroom;
    filled->data_len = d.length;
    // Translate the descriptor's checksum verdict write-back into mbuf
    // flags — only when this queue negotiated RX checksum offload, so a
    // masked-off queue's stack falls back to software verification.
    filled->ol_flags = 0;
    if ((offloads_ & kOffloadRxCsum) != 0) {
      if ((d.status & nic::kRxStatusIpCs) != 0) {
        filled->ol_flags |= (d.errors & nic::kRxErrorIpE) != 0 ? kRxCsumIpBad
                                                               : kRxCsumIpGood;
      }
      if ((d.status & nic::kRxStatusL4Cs) != 0) {
        filled->ol_flags |= (d.errors & nic::kRxErrorL4E) != 0 ? kRxCsumL4Bad
                                                               : kRxCsumL4Good;
      }
    }
    out[got++] = filled;
    stats_.ipackets++;
    stats_.ibytes += d.length;

    rx_staged_[rx_next_] = fresh;
    RxDesc nd{};
    nd.buffer_addr = fresh->room.address() + kMbufHeadroom;
    rx_ring_.store<RxDesc>(rx_next_ * sizeof(RxDesc), nd);
    // RDT chases the just-refilled slot (igb convention: device may fill
    // up to RDT-1, keeping one slot of slack).
    dev_->port(port_).write_rdt(queue_, rx_next_);
    rx_next_ = (rx_next_ + 1) % conf_.rx_ring_size;
  }
  stats_.imissed = dev_->port(port_).queue_stats(queue_).rx_no_desc;
  return got;
}

void E82576Pmd::reclaim_tx() {
  while (tx_clean_ != tx_next_) {
    TxDesc d = tx_ring_.load<TxDesc>(tx_clean_ * sizeof(TxDesc));
    if ((d.status & kTxStatusDD) == 0) break;
    if (tx_pending_[tx_clean_] != nullptr) {
      // The chain head is parked on its LAST descriptor slot: every
      // earlier segment of the frame was fetched before this one wrote
      // back, so the whole chain (indirect segments detaching their
      // attached rooms) can return now.
      pool_->free_chain(tx_pending_[tx_clean_]);
      tx_pending_[tx_clean_] = nullptr;
    }
    tx_clean_ = (tx_clean_ + 1) % conf_.tx_ring_size;
  }
}

std::size_t E82576Pmd::tx_burst(std::span<Mbuf*> in) {
  dev_->poll_queue(port_, queue_, clock_->now());
  reclaim_tx();
  std::size_t sent = 0;
  for (Mbuf* head : in) {
    // One descriptor per non-empty segment; frames are all-or-nothing
    // against the ring space (a torn chain must never reach the wire).
    std::uint32_t nsegs = 0;
    std::uint32_t bytes = 0;
    Mbuf* last = nullptr;
    for (Mbuf* s = head; s != nullptr; s = s->next) {
      if (s->data_len == 0) continue;
      ++nsegs;
      bytes += s->data_len;
      last = s;
    }
    if (nsegs == 0) {  // nothing to send: consume the frame anyway
      pool_->free_chain(head);
      ++sent;
      continue;
    }
    // Offload translation (head mbuf ol_flags → descriptor surface). TSO
    // frames reference a context descriptor; checksum-only frames use the
    // legacy IC/css/cso insertion on their first data descriptor.
    const bool tso = (head->ol_flags & kTxOffloadTso) != 0 &&
                     (offloads_ & kOffloadTxTso) != 0;
    const bool csum_tcp = (head->ol_flags & kTxOffloadTcpCsum) != 0 &&
                          (offloads_ & kOffloadTxTcpCsum) != 0;
    const bool csum_udp = (head->ol_flags & kTxOffloadUdpCsum) != 0 &&
                          (offloads_ & kOffloadTxUdpCsum) != 0;
    const bool csum = !tso && (csum_tcp || csum_udp);
    const bool need_ctx =
        tso && (!tx_ctx_cached_ || tx_ctx_cache_.l2_len != head->l2_len ||
                tx_ctx_cache_.l3_len != head->l3_len ||
                tx_ctx_cache_.l4_len != head->l4_len ||
                tx_ctx_cache_.mss != head->tso_segsz);
    const std::uint32_t slots = nsegs + (need_ctx ? 1u : 0u);
    if (slots > conf_.tx_ring_size - 1) {
      // The chain can NEVER fit this ring (even empty it has ring_size-1
      // usable slots): consume and drop it rather than wedge the queue.
      pool_->free_chain(head);
      stats_.oerrors++;
      ++sent;
      continue;
    }
    const std::uint32_t free_slots =
        (tx_clean_ + conf_.tx_ring_size - tx_next_ - 1) % conf_.tx_ring_size;
    if (slots > free_slots) break;  // ring full this burst: caller retries
    if (need_ctx) {
      nic::TxCtxDesc c{};
      c.l2_len = head->l2_len;
      c.l3_len = head->l3_len;
      c.l4_len = head->l4_len;
      c.olflags = nic::kTxCtxOlTso | nic::kTxCtxOlTcp | nic::kTxCtxOlIp;
      c.mss = head->tso_segsz;
      c.cmd = nic::kTxCmdCtx | nic::kTxCmdRS;
      tx_ring_.store<nic::TxCtxDesc>(tx_next_ * sizeof(nic::TxCtxDesc), c);
      tx_pending_[tx_next_] = nullptr;
      tx_next_ = (tx_next_ + 1) % conf_.tx_ring_size;
      tx_ctx_cache_ = c;
      tx_ctx_cached_ = true;
    }
    bool first = true;
    for (Mbuf* s = head; s != nullptr; s = s->next) {
      if (s->data_len == 0) continue;
      TxDesc d{};
      d.buffer_addr = s->data_addr();
      d.length = static_cast<std::uint16_t>(s->data_len);
      d.cmd = static_cast<std::uint8_t>(kTxCmdRS |
                                        (s == last ? kTxCmdEOP : 0));
      if (first && csum) {
        d.cmd |= nic::kTxCmdIC;
        d.css = static_cast<std::uint8_t>(head->l2_len + head->l3_len);
        d.cso = static_cast<std::uint8_t>(d.css + (csum_tcp ? 16 : 6));
      }
      if (first && tso) d.cmd |= nic::kTxCmdTse;
      first = false;
      tx_ring_.store<TxDesc>(tx_next_ * sizeof(TxDesc), d);
      // Park the chain on the frame's final slot (null elsewhere): its
      // write-back proves the device fetched every segment.
      tx_pending_[tx_next_] = s == last ? head : nullptr;
      tx_next_ = (tx_next_ + 1) % conf_.tx_ring_size;
    }
    stats_.opackets++;
    stats_.obytes += bytes;
    stats_.tx_segs += slots;
    if (tso) {
      const std::uint32_t hdr = static_cast<std::uint32_t>(head->l2_len) +
                                head->l3_len + head->l4_len;
      stats_.tso_frames++;
      stats_.tso_bytes += bytes > hdr ? bytes - hdr : 0;
    }
    ++sent;
  }
  if (sent > 0) stats_.tx_bursts++;  // only calls that carried frames
  dev_->port(port_).write_tdt(queue_, tx_next_);
  // Let the device fetch immediately (polling model), then reclaim.
  dev_->poll_queue(port_, queue_, clock_->now());
  reclaim_tx();
  return sent;
}

EthStats E82576Pmd::stats() const { return stats_; }

}  // namespace cherinet::updk
