// Environment Abstraction Layer: user-space takeover of the NIC.
//
// DPDK detaches the NIC from the kernel with a small kernel module and
// rebinds it to user space (paper §II-C); the paper's Morello port had to
// implement exactly this attach path with correctly-permissioned memory
// (§III-B "DPDK"). Our EAL performs the equivalent ceremony against the
// device model: carve the driver's memory from the compartment heap, grant
// the DMA engine a capability restricted to that memory (never the whole
// compartment), create the mempool, and bring the port up through the PMD.
#pragma once

#include <memory>
#include <string>

#include "machine/heap.hpp"
#include "nic/e82576.hpp"
#include "updk/pmd_e82576.hpp"

namespace cherinet::updk {

struct PortResources {
  std::unique_ptr<Mempool> pool;
  std::unique_ptr<EthDev> dev;
};

struct EalConfig {
  std::uint32_t n_mbufs = 2048;
  std::uint32_t data_room = 2048 + kMbufHeadroom;
  EthConf eth{};
};

class Eal {
 public:
  /// Detach `port` of `card` from the (conceptual) kernel and attach it to
  /// the compartment owning `heap`. The DMA grant covers the heap region —
  /// descriptor rings and the mbuf arena — with data RW permissions only.
  [[nodiscard]] static PortResources attach_port(
      nic::E82576Device& card, int port, machine::CompartmentHeap& heap,
      sim::VirtualClock& clock, const EalConfig& cfg = EalConfig{},
      const std::string& name = "eth");

  /// Multi-queue attach: bring up ONE queue pair of `port` for a stack
  /// shard. The first caller sizes the port to `queue_count` queues
  /// (resetting ring state — attach every shard before any traffic);
  /// later callers with the same count leave sibling queues alone. Each
  /// shard gets its own mempool; the DMA grant covers the shared heap.
  [[nodiscard]] static PortResources attach_port_queue(
      nic::E82576Device& card, int port, std::uint32_t queue,
      std::uint32_t queue_count, machine::CompartmentHeap& heap,
      sim::VirtualClock& clock, const EalConfig& cfg = EalConfig{},
      const std::string& name = "eth");
};

}  // namespace cherinet::updk
