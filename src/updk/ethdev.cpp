#include "updk/ethdev.hpp"

namespace cherinet::updk {

std::string offload_names(std::uint32_t offloads) {
  std::string out;
  const auto add = [&out](const char* name) {
    if (!out.empty()) out += '|';
    out += name;
  };
  if ((offloads & kOffloadTxTcpCsum) != 0) add("tx-tcp-csum");
  if ((offloads & kOffloadTxUdpCsum) != 0) add("tx-udp-csum");
  if ((offloads & kOffloadTxTso) != 0) add("tx-tso");
  if ((offloads & kOffloadRxCsum) != 0) add("rx-csum");
  if (out.empty()) out = "none";
  return out;
}

}  // namespace cherinet::updk
