#include "updk/ethdev.hpp"
namespace cherinet::updk { static_assert(sizeof(EthConf) > 0); }
