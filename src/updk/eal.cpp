#include "updk/eal.hpp"

namespace cherinet::updk {

namespace {
// TSO slicing re-inserts the TCP checksum per wire frame, so a TSO request
// without TCP checksum insertion is incoherent — imply it, like igb does.
EthConf normalized_eth(EthConf eth) {
  if ((eth.offloads & kOffloadTxTso) != 0) eth.offloads |= kOffloadTxTcpCsum;
  return eth;
}
}  // namespace

PortResources Eal::attach_port(nic::E82576Device& card, int port,
                               machine::CompartmentHeap& heap,
                               sim::VirtualClock& clock, const EalConfig& cfg,
                               const std::string& name) {
  // IOMMU grant: data-only (no capability transfer through DMA), bounded to
  // the driver compartment's region.
  const cheri::Capability dma_grant =
      heap.region().with_perms(cheri::PermSet{cheri::Perm::kLoad} |
                               cheri::Perm::kStore | cheri::Perm::kGlobal);
  card.attach_dma(port, dma_grant);

  PortResources res;
  res.pool = std::make_unique<Mempool>(&heap, cfg.n_mbufs, cfg.data_room);
  res.dev = std::make_unique<E82576Pmd>(name + std::to_string(port), &card,
                                        port, &heap, res.pool.get(), &clock,
                                        normalized_eth(cfg.eth));
  return res;
}

PortResources Eal::attach_port_queue(nic::E82576Device& card, int port,
                                     std::uint32_t queue,
                                     std::uint32_t queue_count,
                                     machine::CompartmentHeap& heap,
                                     sim::VirtualClock& clock,
                                     const EalConfig& cfg,
                                     const std::string& name) {
  const cheri::Capability dma_grant =
      heap.region().with_perms(cheri::PermSet{cheri::Perm::kLoad} |
                               cheri::Perm::kStore | cheri::Perm::kGlobal);
  card.attach_dma(port, dma_grant);
  // Size the port once; re-configuring would wipe sibling shards' rings.
  if (card.port(port).queue_count() != queue_count) {
    card.port(port).configure_queues(queue_count);
  }
  PortResources res;
  res.pool = std::make_unique<Mempool>(&heap, cfg.n_mbufs, cfg.data_room);
  res.dev = std::make_unique<E82576Pmd>(
      name + std::to_string(port) + "q" + std::to_string(queue), &card, port,
      queue, &heap, res.pool.get(), &clock, normalized_eth(cfg.eth));
  return res;
}

}  // namespace cherinet::updk
