#include "updk/eal.hpp"

namespace cherinet::updk {

PortResources Eal::attach_port(nic::E82576Device& card, int port,
                               machine::CompartmentHeap& heap,
                               sim::VirtualClock& clock, const EalConfig& cfg,
                               const std::string& name) {
  // IOMMU grant: data-only (no capability transfer through DMA), bounded to
  // the driver compartment's region.
  const cheri::Capability dma_grant =
      heap.region().with_perms(cheri::PermSet{cheri::Perm::kLoad} |
                               cheri::Perm::kStore | cheri::Perm::kGlobal);
  card.attach_dma(port, dma_grant);

  PortResources res;
  res.pool = std::make_unique<Mempool>(&heap, cfg.n_mbufs, cfg.data_room);
  res.dev = std::make_unique<E82576Pmd>(name + std::to_string(port), &card,
                                        port, &heap, res.pool.get(), &clock,
                                        cfg.eth);
  return res;
}

}  // namespace cherinet::updk
