#include "updk/ring.hpp"
namespace cherinet::updk { static_assert(sizeof(Ring<int>) > 0); }
