#include "updk/mempool.hpp"

#include <stdexcept>

namespace cherinet::updk {

Mempool::Mempool(machine::CompartmentHeap* heap, std::uint32_t n_mbufs,
                 std::uint32_t data_room)
    : data_room_(data_room),
      free_ring_(n_mbufs + 1),
      indirect_ring_(n_mbufs + 1) {
  if (heap == nullptr || n_mbufs == 0) {
    throw std::invalid_argument("Mempool: bad configuration");
  }
  mbufs_.resize(n_mbufs);
  for (std::uint32_t i = 0; i < n_mbufs; ++i) {
    Mbuf& m = mbufs_[i];
    m.room = heap->alloc_view(data_room);
    m.pool_index = i;
    m.pool = this;
    m.refcnt = 0;
    free_ring_.enqueue(i);
  }
  // Indirect headers carry no data room: indices continue past the direct
  // buffers so pool_index stays unique across both arrays.
  indirect_.resize(n_mbufs);
  for (std::uint32_t i = 0; i < n_mbufs; ++i) {
    Mbuf& m = indirect_[i];
    m.pool_index = n_mbufs + i;
    m.pool = this;
    m.refcnt = 0;
    m.indirect = true;
    indirect_ring_.enqueue(i);
  }
}

Mbuf* Mempool::alloc() {
  const auto idx = free_ring_.dequeue();
  if (!idx.has_value()) {
    ++stats_.alloc_failures;
    return nullptr;
  }
  // Buffers enter the ring pre-reset (constructor, free, recycle), so the
  // hot path hands them out untouched.
  Mbuf& m = mbufs_[*idx];
  m.refcnt = 1;
  ++stats_.allocs;
  return &m;
}

std::size_t Mempool::alloc_bulk(std::span<Mbuf*> out) {
  std::size_t n = 0;
  for (; n < out.size(); ++n) {
    Mbuf* m = alloc();
    if (m == nullptr) break;
    out[n] = m;
  }
  for (std::size_t i = n; i < out.size(); ++i) out[i] = nullptr;
  return n;
}

Mbuf* Mempool::alloc_indirect(Mbuf* owner, std::uint32_t off,
                              std::uint32_t len) {
  if (owner == nullptr || owner->indirect) {
    throw std::invalid_argument("Mempool::alloc_indirect: bad owner");
  }
  const auto idx = indirect_ring_.dequeue();
  if (!idx.has_value()) {
    ++stats_.alloc_failures;
    return nullptr;
  }
  retain(owner);  // the slice stays live until the segment is freed
  Mbuf& m = indirect_[*idx];
  m.refcnt = 1;
  m.room = owner->room;
  m.data_off = off;
  m.data_len = len;
  m.next = nullptr;
  m.nb_segs = 1;
  m.attach = owner;
  ++stats_.indirect_allocs;
  return &m;
}

Mbuf* Mempool::alloc_indirect_view(const machine::CapView& view) {
  const auto idx = indirect_ring_.dequeue();
  if (!idx.has_value()) {
    ++stats_.alloc_failures;
    return nullptr;
  }
  Mbuf& m = indirect_[*idx];
  m.refcnt = 1;
  m.room = view;
  m.data_off = 0;
  m.data_len = static_cast<std::uint32_t>(view.size());
  m.next = nullptr;
  m.nb_segs = 1;
  m.attach = nullptr;
  ++stats_.indirect_allocs;
  return &m;
}

void Mempool::retain(Mbuf* m) {
  if (m == nullptr || m->pool != this) {
    throw std::invalid_argument("Mempool::retain: foreign mbuf");
  }
  if (m->refcnt == 0) {
    throw std::logic_error("Mempool::retain: dead mbuf");
  }
  ++m->refcnt;
  ++stats_.retains;
}

void Mempool::retire(Mbuf* m, std::uint64_t Stats::* counter) {
  if (m->indirect) {
    Mbuf* owner = m->attach;
    m->room = machine::CapView{};
    m->data_off = 0;
    m->data_len = 0;
    m->next = nullptr;
    m->nb_segs = 1;
    m->attach = nullptr;
    ++stats_.indirect_frees;
    indirect_ring_.enqueue(m->pool_index -
                           static_cast<std::uint32_t>(mbufs_.size()));
    if (owner != nullptr) free(owner);  // detach: drop the attach reference
    return;
  }
  m->reset();  // data room returns pre-reset: no free/alloc round trip
  ++(stats_.*counter);
  free_ring_.enqueue(m->pool_index);
}

void Mempool::recycle(Mbuf* m) {
  if (m == nullptr) return;
  if (m->pool != this) {
    throw std::invalid_argument("Mempool::recycle: foreign mbuf");
  }
  if (m->refcnt == 0) {
    throw std::logic_error("Mempool::recycle: double recycle");
  }
  if (--m->refcnt == 0) retire(m, &Stats::recycles);
}

void Mempool::free(Mbuf* m) {
  if (m == nullptr) return;
  if (m->pool != this) {
    throw std::invalid_argument("Mempool::free: foreign mbuf");
  }
  if (m->refcnt == 0) {
    throw std::logic_error("Mempool::free: double free");
  }
  if (--m->refcnt == 0) retire(m, &Stats::frees);
}

void Mempool::free_chain(Mbuf* head) {
  while (head != nullptr) {
    Mbuf* next = head->next;  // free() resets the link
    head->next = nullptr;
    free(head);
    head = next;
  }
}

void Mempool::release_tx(Mbuf* m) {
  if (m == nullptr) return;
  if (m->pool != this) {
    throw std::invalid_argument("Mempool::release_tx: foreign mbuf");
  }
  if (m->refcnt == 0) {
    throw std::logic_error("Mempool::release_tx: double release");
  }
  if (--m->refcnt == 0) retire(m, &Stats::tx_releases);
}

void Mempool::free_bulk(std::span<Mbuf* const> ms) {
  for (Mbuf* m : ms) {
    if (m != nullptr) free(m);
  }
}

}  // namespace cherinet::updk
