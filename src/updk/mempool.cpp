#include "updk/mempool.hpp"

#include <stdexcept>

namespace cherinet::updk {

Mempool::Mempool(machine::CompartmentHeap* heap, std::uint32_t n_mbufs,
                 std::uint32_t data_room)
    : data_room_(data_room), free_ring_(n_mbufs + 1) {
  if (heap == nullptr || n_mbufs == 0) {
    throw std::invalid_argument("Mempool: bad configuration");
  }
  mbufs_.resize(n_mbufs);
  for (std::uint32_t i = 0; i < n_mbufs; ++i) {
    Mbuf& m = mbufs_[i];
    m.room = heap->alloc_view(data_room);
    m.pool_index = i;
    m.pool = this;
    m.refcnt = 0;
    free_ring_.enqueue(i);
  }
}

Mbuf* Mempool::alloc() {
  const auto idx = free_ring_.dequeue();
  if (!idx.has_value()) {
    ++stats_.alloc_failures;
    return nullptr;
  }
  // Buffers enter the ring pre-reset (constructor, free, recycle), so the
  // hot path hands them out untouched.
  Mbuf& m = mbufs_[*idx];
  m.refcnt = 1;
  ++stats_.allocs;
  return &m;
}

std::size_t Mempool::alloc_bulk(std::span<Mbuf*> out) {
  std::size_t n = 0;
  for (; n < out.size(); ++n) {
    Mbuf* m = alloc();
    if (m == nullptr) break;
    out[n] = m;
  }
  for (std::size_t i = n; i < out.size(); ++i) out[i] = nullptr;
  return n;
}

void Mempool::retain(Mbuf* m) {
  if (m == nullptr || m->pool != this) {
    throw std::invalid_argument("Mempool::retain: foreign mbuf");
  }
  if (m->refcnt == 0) {
    throw std::logic_error("Mempool::retain: dead mbuf");
  }
  ++m->refcnt;
  ++stats_.retains;
}

void Mempool::recycle(Mbuf* m) {
  if (m == nullptr) return;
  if (m->pool != this) {
    throw std::invalid_argument("Mempool::recycle: foreign mbuf");
  }
  if (m->refcnt == 0) {
    throw std::logic_error("Mempool::recycle: double recycle");
  }
  if (--m->refcnt == 0) {
    m->reset();  // data room returns pre-reset: no free/alloc round trip
    ++stats_.recycles;
    free_ring_.enqueue(m->pool_index);
  }
}

void Mempool::free(Mbuf* m) {
  if (m == nullptr) return;
  if (m->pool != this) {
    throw std::invalid_argument("Mempool::free: foreign mbuf");
  }
  if (m->refcnt == 0) {
    throw std::logic_error("Mempool::free: double free");
  }
  if (--m->refcnt == 0) {
    m->reset();
    ++stats_.frees;
    free_ring_.enqueue(m->pool_index);
  }
}

void Mempool::release_tx(Mbuf* m) {
  if (m == nullptr) return;
  if (m->pool != this) {
    throw std::invalid_argument("Mempool::release_tx: foreign mbuf");
  }
  if (m->refcnt == 0) {
    throw std::logic_error("Mempool::release_tx: double release");
  }
  if (--m->refcnt == 0) {
    m->reset();
    ++stats_.tx_releases;
    free_ring_.enqueue(m->pool_index);
  }
}

void Mempool::free_bulk(std::span<Mbuf* const> ms) {
  for (Mbuf* m : ms) {
    if (m != nullptr) free(m);
  }
}

}  // namespace cherinet::updk
