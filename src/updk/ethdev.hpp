// Ethernet device API (rte_ethdev analogue): burst-oriented, polling.
//
// The stack is written against this interface; the e82576 PMD implements it
// over the device model. rx_burst never blocks — an empty return simply
// means "nothing arrived yet", and the caller's main loop decides when to
// yield to the time arbiter.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "nic/mac.hpp"
#include "sim/virtual_clock.hpp"
#include "updk/mbuf.hpp"

namespace cherinet::updk {

// Offload capability bits (EthConf::offloads request mask and the
// EthDev::offloads() effective set — rte_eth_conf tx/rx offload idiom).
// TSO is deliberately NOT in kOffloadDefault: a TSO queue changes the
// stack's emission granularity (super-segments), which benches and tests
// opt into explicitly; the checksum offloads are behaviour-preserving.
inline constexpr std::uint32_t kOffloadTxTcpCsum = 1u << 0;
inline constexpr std::uint32_t kOffloadTxUdpCsum = 1u << 1;
inline constexpr std::uint32_t kOffloadTxTso = 1u << 2;
inline constexpr std::uint32_t kOffloadRxCsum = 1u << 3;
inline constexpr std::uint32_t kOffloadDefault =
    kOffloadTxTcpCsum | kOffloadTxUdpCsum | kOffloadRxCsum;
inline constexpr std::uint32_t kOffloadAll = kOffloadDefault | kOffloadTxTso;

/// Human-readable offload set ("tx-tcp-csum|tx-udp-csum|rx-csum", "none") —
/// bench legs and attach-time logging.
[[nodiscard]] std::string offload_names(std::uint32_t offloads);

struct EthConf {
  std::uint32_t rx_ring_size = 512;
  std::uint32_t tx_ring_size = 512;
  bool promiscuous = true;
  /// Requested offload capabilities. The driver masks this to what the
  /// hardware supports; EthDev::offloads() reports the effective set the
  /// stack negotiates against at attach. 0 = pure software path.
  std::uint32_t offloads = kOffloadDefault;
};

struct EthStats {
  std::uint64_t ipackets = 0;
  std::uint64_t opackets = 0;
  std::uint64_t ibytes = 0;
  std::uint64_t obytes = 0;
  std::uint64_t imissed = 0;  // ring-full drops at the device
  std::uint64_t oerrors = 0;
  /// tx_burst invocations that carried at least one frame — opackets /
  /// tx_bursts is the frames-per-doorbell figure the table2 bench gates on
  /// (>= 8 under sustained load once emission stages per loop turn).
  std::uint64_t tx_bursts = 0;
  std::uint64_t tx_segs = 0;  // descriptors consumed (chain segments +
                              // context descriptors)
  /// TSO accounting: super-segment frames handed down with kTxOffloadTso
  /// and the payload bytes the device sliced for them.
  std::uint64_t tso_frames = 0;
  std::uint64_t tso_bytes = 0;
};

class EthDev {
 public:
  virtual ~EthDev() = default;

  /// Receive up to out.size() packets; returns the number received. RX
  /// frames are always single-segment: the device linearizes each received
  /// frame into one staged descriptor buffer (the RX linearization rule of
  /// the chained-mbuf ABI — see mbuf.hpp).
  virtual std::size_t rx_burst(std::span<Mbuf*> out) = 0;

  /// Transmit up to in.size() frames, each a chained mbuf (head + linked
  /// payload segments, possibly indirect — see the driver ABI in mbuf.hpp).
  /// The driver gathers every segment straight from its data room (one
  /// descriptor per segment, EOP on the last) and frees the WHOLE chain via
  /// Mempool::free_chain once the device has fetched it. Returns the number
  /// of frames accepted; rejected chains remain the caller's to free.
  virtual std::size_t tx_burst(std::span<Mbuf*> in) = 0;

  [[nodiscard]] virtual nic::MacAddr mac() const = 0;
  [[nodiscard]] virtual bool link_up() const = 0;
  [[nodiscard]] virtual EthStats stats() const = 0;
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Effective offload capability set of THIS queue (kOffload* bits): the
  /// configured request masked to hardware support. The stack reads it once
  /// at attach and never sets an ol_flag the mask lacks — per-queue
  /// software fallback falls out of the negotiation. Default: none.
  [[nodiscard]] virtual std::uint32_t offloads() const { return 0; }

  /// Earliest future event the device knows about (next wire delivery) —
  /// the main loop's idle deadline.
  [[nodiscard]] virtual std::optional<sim::Ns> next_event() const = 0;

  // --- RX flow steering (multi-queue RSS; defaults = single-queue no-op) ---

  /// Which RX queue this driver instance polls, out of how many the port
  /// runs. queue_count == 1 means no steering: every flow lands here.
  struct RxSteering {
    std::uint16_t queue_count = 1;
    std::uint16_t queue_id = 0;
  };
  [[nodiscard]] virtual RxSteering rx_steering() const { return {}; }

  /// The RX queue an INBOUND frame with this tuple would land on (remote =
  /// the frame's source). A connect()ing stack filters ephemeral-port
  /// candidates with this so replies steer back to its own queue.
  /// Addresses/ports in host order; proto is the IP protocol number.
  [[nodiscard]] virtual std::uint16_t rx_queue_of(
      std::uint32_t remote_ip, std::uint16_t remote_port,
      std::uint32_t local_ip, std::uint16_t local_port,
      std::uint8_t proto) const {
    (void)remote_ip;
    (void)remote_port;
    (void)local_ip;
    (void)local_port;
    (void)proto;
    return 0;
  }

  /// Pin inbound frames for (proto, local_port) to THIS driver's queue
  /// (listener steering: accepted flows inherit the listener's shard).
  /// Returns false when the device is out of filter slots.
  virtual bool steer_local_port(std::uint8_t proto, std::uint16_t local_port) {
    (void)proto;
    (void)local_port;
    return true;
  }
  virtual void unsteer_local_port(std::uint8_t proto,
                                  std::uint16_t local_port) {
    (void)proto;
    (void)local_port;
  }
};

}  // namespace cherinet::updk
