// Ethernet device API (rte_ethdev analogue): burst-oriented, polling.
//
// The stack is written against this interface; the e82576 PMD implements it
// over the device model. rx_burst never blocks — an empty return simply
// means "nothing arrived yet", and the caller's main loop decides when to
// yield to the time arbiter.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>

#include "nic/mac.hpp"
#include "sim/virtual_clock.hpp"
#include "updk/mbuf.hpp"

namespace cherinet::updk {

struct EthConf {
  std::uint32_t rx_ring_size = 512;
  std::uint32_t tx_ring_size = 512;
  bool promiscuous = true;
};

struct EthStats {
  std::uint64_t ipackets = 0;
  std::uint64_t opackets = 0;
  std::uint64_t ibytes = 0;
  std::uint64_t obytes = 0;
  std::uint64_t imissed = 0;  // ring-full drops at the device
  std::uint64_t oerrors = 0;
};

class EthDev {
 public:
  virtual ~EthDev() = default;

  /// Receive up to out.size() packets; returns the number received.
  virtual std::size_t rx_burst(std::span<Mbuf*> out) = 0;

  /// Transmit up to in.size() packets; consumed mbufs are freed after the
  /// device fetches them. Returns the number accepted.
  virtual std::size_t tx_burst(std::span<Mbuf*> in) = 0;

  [[nodiscard]] virtual nic::MacAddr mac() const = 0;
  [[nodiscard]] virtual bool link_up() const = 0;
  [[nodiscard]] virtual EthStats stats() const = 0;
  [[nodiscard]] virtual const std::string& name() const = 0;

  /// Earliest future event the device knows about (next wire delivery) —
  /// the main loop's idle deadline.
  [[nodiscard]] virtual std::optional<sim::Ns> next_event() const = 0;
};

}  // namespace cherinet::updk
