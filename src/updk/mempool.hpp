// Fixed-size mbuf pool over a lock-free ring (rte_mempool analogue).
//
// All data rooms are carved from the owning compartment's heap at pool
// creation, each as its own exactly-bounded capability. The pool region is
// also what the driver grants to the NIC DMA engine — so device writes are
// confined to packet memory even if a descriptor is corrupted.
//
// Besides the direct buffers the pool keeps an equal number of INDIRECT
// mbuf headers (no data room of their own): alloc_indirect attaches one to
// a window of another buffer's room under that buffer's refcount — the
// chained-frame segments scatter-gather emission hands the driver (see the
// driver ABI comment in mbuf.hpp).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "machine/heap.hpp"
#include "updk/mbuf.hpp"
#include "updk/ring.hpp"

namespace cherinet::updk {

class Mempool {
 public:
  /// Create `n_mbufs` buffers of `data_room` bytes each from `heap` (plus
  /// `n_mbufs` room-less indirect headers, costing no heap memory).
  Mempool(machine::CompartmentHeap* heap, std::uint32_t n_mbufs,
          std::uint32_t data_room);

  /// Allocate one mbuf (refcnt=1, reset offsets). Null when exhausted.
  [[nodiscard]] Mbuf* alloc();

  /// Allocate up to `out.size()` mbufs in one call
  /// (rte_pktmbuf_alloc_bulk); unobtained tail slots are nulled. Returns
  /// the number obtained.
  [[nodiscard]] std::size_t alloc_bulk(std::span<Mbuf*> out);

  /// Attach an indirect mbuf onto [off, off+len) of `owner`'s data room
  /// (rte_pktmbuf_attach): the owner gains a reference held until the
  /// indirect segment is freed, so the slice stays live however the
  /// original holder releases its own reference. Null when the indirect
  /// ring is exhausted.
  [[nodiscard]] Mbuf* alloc_indirect(Mbuf* owner, std::uint32_t off,
                                     std::uint32_t len);

  /// Attach an indirect mbuf onto a raw bounded view (stack-internal
  /// memory with no refcount, e.g. a send-ring span). LIFETIME IS THE
  /// CALLER'S PROBLEM: the view must stay untouched until the chain is
  /// freed — the stack guarantees it by flushing staged frames before any
  /// write into ring memory.
  [[nodiscard]] Mbuf* alloc_indirect_view(const machine::CapView& view);

  /// Take an additional reference (shared ownership). The RX path uses this
  /// to loan a received data room onward — to a socket's RX chain or to the
  /// application via ff_zc_recv — while the driver burst still holds its
  /// own reference.
  void retain(Mbuf* m);

  /// Drop one reference; returns the buffer to the ring at zero. Freeing
  /// an indirect mbuf detaches it (releasing its owner reference) and
  /// returns the header to the indirect ring.
  void free(Mbuf* m);

  /// Free a whole tx chain (head + every linked segment) — how the driver
  /// releases a fetched frame.
  void free_chain(Mbuf* head);

  /// Drop one reference from a *loan*: at zero the data room goes straight
  /// back onto the free ring. Buffers always enter the ring pre-reset
  /// (constructor/free/recycle), so alloc() hands them out untouched.
  /// Counted separately so the RX census can prove loaned buffers return
  /// through recycling and nothing else.
  void recycle(Mbuf* m);

  /// Free a whole burst (skips null entries) — how the stack's RX loop
  /// returns each rx_burst to the ring.
  void free_bulk(std::span<Mbuf* const> ms);

  /// Drop one reference from the TCP send queue (TxChain): a zc TX room
  /// held until cumulative ACK returns to the free ring pre-reset, exactly
  /// like an RX loan recycle, but counted on its own so the TX census can
  /// prove retained send buffers come back through acknowledgement (or
  /// teardown) and nothing else.
  void release_tx(Mbuf* m);

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(mbufs_.size());
  }
  [[nodiscard]] std::uint32_t available() const noexcept {
    return static_cast<std::uint32_t>(free_ring_.count());
  }
  [[nodiscard]] std::uint32_t indirect_available() const noexcept {
    return static_cast<std::uint32_t>(indirect_ring_.count());
  }
  [[nodiscard]] std::uint32_t data_room() const noexcept {
    return data_room_;
  }
  [[nodiscard]] Mbuf& at(std::uint32_t i) { return mbufs_[i]; }

  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t alloc_failures = 0;
    std::uint64_t retains = 0;
    std::uint64_t recycles = 0;
    std::uint64_t tx_releases = 0;  // zc TX refs released (ACK / teardown)
    std::uint64_t indirect_allocs = 0;
    std::uint64_t indirect_frees = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  /// Shared refcnt-zero path: direct buffers return to the free ring
  /// pre-reset; indirect headers detach and return to the indirect ring.
  void retire(Mbuf* m, std::uint64_t Stats::* counter);

  std::uint32_t data_room_;
  std::vector<Mbuf> mbufs_;
  std::vector<Mbuf> indirect_;
  Ring<std::uint32_t> free_ring_;
  Ring<std::uint32_t> indirect_ring_;
  Stats stats_;
};

}  // namespace cherinet::updk
