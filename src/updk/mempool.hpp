// Fixed-size mbuf pool over a lock-free ring (rte_mempool analogue).
//
// All data rooms are carved from the owning compartment's heap at pool
// creation, each as its own exactly-bounded capability. The pool region is
// also what the driver grants to the NIC DMA engine — so device writes are
// confined to packet memory even if a descriptor is corrupted.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "machine/heap.hpp"
#include "updk/mbuf.hpp"
#include "updk/ring.hpp"

namespace cherinet::updk {

class Mempool {
 public:
  /// Create `n_mbufs` buffers of `data_room` bytes each from `heap`.
  Mempool(machine::CompartmentHeap* heap, std::uint32_t n_mbufs,
          std::uint32_t data_room);

  /// Allocate one mbuf (refcnt=1, reset offsets). Null when exhausted.
  [[nodiscard]] Mbuf* alloc();

  /// Allocate up to `out.size()` mbufs in one call
  /// (rte_pktmbuf_alloc_bulk); unobtained tail slots are nulled. Returns
  /// the number obtained.
  [[nodiscard]] std::size_t alloc_bulk(std::span<Mbuf*> out);

  /// Take an additional reference (shared ownership). The RX path uses this
  /// to loan a received data room onward — to a socket's RX chain or to the
  /// application via ff_zc_recv — while the driver burst still holds its
  /// own reference.
  void retain(Mbuf* m);

  /// Drop one reference; returns the buffer to the ring at zero.
  void free(Mbuf* m);

  /// Drop one reference from a *loan*: at zero the data room goes straight
  /// back onto the free ring. Buffers always enter the ring pre-reset
  /// (constructor/free/recycle), so alloc() hands them out untouched.
  /// Counted separately so the RX census can prove loaned buffers return
  /// through recycling and nothing else.
  void recycle(Mbuf* m);

  /// Free a whole burst (skips null entries) — how the stack's RX loop
  /// returns each rx_burst to the ring.
  void free_bulk(std::span<Mbuf* const> ms);

  /// Drop one reference from the TCP send queue (TxChain): a zc TX room
  /// held until cumulative ACK returns to the free ring pre-reset, exactly
  /// like an RX loan recycle, but counted on its own so the TX census can
  /// prove retained send buffers come back through acknowledgement (or
  /// teardown) and nothing else.
  void release_tx(Mbuf* m);

  [[nodiscard]] std::uint32_t size() const noexcept {
    return static_cast<std::uint32_t>(mbufs_.size());
  }
  [[nodiscard]] std::uint32_t available() const noexcept {
    return static_cast<std::uint32_t>(free_ring_.count());
  }
  [[nodiscard]] std::uint32_t data_room() const noexcept {
    return data_room_;
  }
  [[nodiscard]] Mbuf& at(std::uint32_t i) { return mbufs_[i]; }

  struct Stats {
    std::uint64_t allocs = 0;
    std::uint64_t frees = 0;
    std::uint64_t alloc_failures = 0;
    std::uint64_t retains = 0;
    std::uint64_t recycles = 0;
    std::uint64_t tx_releases = 0;  // zc TX refs released (ACK / teardown)
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  std::uint32_t data_room_;
  std::vector<Mbuf> mbufs_;
  Ring<std::uint32_t> free_ring_;
  Stats stats_;
};

}  // namespace cherinet::updk
