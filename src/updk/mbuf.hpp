// Packet buffers (rte_mbuf analogue) backed by capability-bounded data rooms.
//
// Each mbuf owns a fixed data room carved from the compartment heap as a
// *bounded capability*: the NIC's DMA engine and the protocol stack both
// access packet bytes exclusively through it, so an off-by-one in any layer
// faults at the mbuf boundary instead of corrupting a neighbour (the
// fine-grained protection the paper gets from CHERI-porting DPDK, §III-B).
// Layout mirrors DPDK: headroom for prepending L2/L3 headers, data region,
// tailroom.
//
// ---- Chained-mbuf driver ABI (scatter-gather emission) ----
//
// A frame handed to EthDev::tx_burst is a CHAIN: the head mbuf (protocol
// headers, serialized into its headroom DPDK-style) linked through `next`
// to payload segments, `nb_segs` counted on the head and pkt_len() the sum
// of the segments' data_len. Payload segments are usually INDIRECT mbufs
// (Mempool::alloc_indirect): headers without a data room of their own whose
// [data_off, data_off+data_len) windows another buffer's still-live room
// under that buffer's refcount — each slice reachable only through its own
// exactly-bounded capability, CompartOS-style bounded delegation applied to
// the wire path.
//
// Ownership: tx_burst takes the WHOLE chain on acceptance; the driver frees
// it with Mempool::free_chain once the device has fetched every segment
// (freeing an indirect segment detaches it, dropping its reference on the
// attached buffer). A rejected chain stays the caller's to free. RX never
// produces chains: the device model linearizes every received frame into
// the single staged descriptor buffer (the RX linearization rule), so
// rx_burst hands out plain single-segment mbufs.
//
// ---- Offload descriptor/flag ABI (hardware checksum + TSO, API v8) ----
//
// Offload metadata rides the HEAD mbuf of a chain (rte_mbuf ol_flags
// idiom); segments ignore it. All fields are requests/verdicts about the
// fully assembled frame the chain describes, not about any one segment.
//
//   ol_flags   TX request bits (set by the stack iff the queue negotiated
//              the capability through EthDev::offloads()):
//                kTxOffloadIpCsum   insert the IPv4 header checksum
//                kTxOffloadTcpCsum  insert the TCP checksum; the stack
//                                   seeds the header's checksum field with
//                                   the folded, NON-inverted pseudo-header
//                                   sum (length term included)
//                kTxOffloadUdpCsum  same contract for UDP
//                kTxOffloadTso      frame is one TCP super-segment; the
//                                   device slices it into tso_segsz-sized
//                                   wire frames with per-slice header
//                                   fixups. Seed EXCLUDES the length term
//                                   (it differs per slice; the device adds
//                                   it) — the DPDK/igb TSO convention.
//              RX verdict bits (set by the driver from the descriptor
//              status/error write-back when the queue negotiated
//              kOffloadRxCsum):
//                kRxCsumIpGood/_Bad   IPv4 header sum checked good/bad
//                kRxCsumL4Good/_Bad   TCP/UDP sum checked good/bad
//              A frame with NEITHER Good nor Bad for a layer was not
//              checked (non-IP, fragment, UDP checksum 0): software must
//              verify.
//   l2_len     MAC header bytes (14 here — no VLAN on these testbeds).
//   l3_len     IPv4 header bytes including options.
//   l4_len     TCP header bytes including options (8 for UDP).
//   tso_segsz  TSO slice payload size (the connection MSS); 0 otherwise.
//
// The PMD translates these to the 82576 descriptor surface: checksum-only
// frames use the legacy IC/css/cso insertion on the first data descriptor;
// TSO frames spend one extra ring slot on a TxCtxDesc (cached per queue —
// re-emitted only when the {l2,l3,l4,mss} tuple changes) and tag their
// data descriptors with TSE. A queue whose EthConf::offloads mask drops a
// capability never sees the corresponding flag: the stack's negotiation at
// attach time keeps the pure software path byte-identical per queue.
#pragma once

#include <cstdint>

#include "machine/cap_view.hpp"

namespace cherinet::updk {

class Mempool;

inline constexpr std::uint32_t kMbufHeadroom = 128;

// Mbuf::ol_flags — TX offload requests (stack → driver)…
inline constexpr std::uint32_t kTxOffloadIpCsum = 1u << 0;
inline constexpr std::uint32_t kTxOffloadTcpCsum = 1u << 1;
inline constexpr std::uint32_t kTxOffloadUdpCsum = 1u << 2;
inline constexpr std::uint32_t kTxOffloadTso = 1u << 3;
// …and RX checksum verdicts (driver → stack). See the ABI block above.
inline constexpr std::uint32_t kRxCsumIpGood = 1u << 8;
inline constexpr std::uint32_t kRxCsumIpBad = 1u << 9;
inline constexpr std::uint32_t kRxCsumL4Good = 1u << 10;
inline constexpr std::uint32_t kRxCsumL4Bad = 1u << 11;

struct Mbuf {
  machine::CapView room;      // the whole data room (bounded capability)
  std::uint32_t data_off = kMbufHeadroom;
  std::uint32_t data_len = 0;
  std::uint16_t refcnt = 0;
  std::uint16_t nb_segs = 1;  // head of a chain: segments linked via next
  Mbuf* next = nullptr;       // next segment of this frame (nullptr = last)
  std::uint32_t pool_index = 0;
  Mempool* pool = nullptr;
  // Indirect mbufs: `room` windows `attach`'s data room (or a raw stack-
  // internal view when attach == nullptr) under a reference released at
  // free time. Direct mbufs keep both fields at their defaults.
  Mbuf* attach = nullptr;
  bool indirect = false;
  // Offload metadata (head mbuf of a chain; see the ABI block above).
  std::uint32_t ol_flags = 0;
  std::uint8_t l2_len = 0;
  std::uint8_t l3_len = 0;
  std::uint8_t l4_len = 0;
  std::uint16_t tso_segsz = 0;

  [[nodiscard]] std::uint64_t room_size() const noexcept {
    return room.size();
  }
  [[nodiscard]] std::uint32_t headroom() const noexcept { return data_off; }
  [[nodiscard]] std::uint64_t tailroom() const noexcept {
    return room_size() - data_off - data_len;
  }

  /// Total frame bytes across the chain (rte_pktmbuf_pkt_len).
  [[nodiscard]] std::uint32_t pkt_len() const noexcept {
    std::uint32_t n = 0;
    for (const Mbuf* s = this; s != nullptr; s = s->next) n += s->data_len;
    return n;
  }

  /// Link `seg` as the last segment of this (head) chain.
  void chain(Mbuf* seg) noexcept {
    Mbuf* t = this;
    while (t->next != nullptr) t = t->next;
    t->next = seg;
    nb_segs = static_cast<std::uint16_t>(nb_segs + seg->nb_segs);
  }

  /// Capability view of the packet data [data_off, data_off+data_len).
  [[nodiscard]] machine::CapView data() const {
    return room.window(data_off, data_len);
  }
  /// Address of the first packet byte (what descriptors carry).
  [[nodiscard]] std::uint64_t data_addr() const noexcept {
    return room.address() + data_off;
  }

  /// Exactly-bounded READ-ONLY view of [off, off+len) within the data room:
  /// the capability ff_zc_recv loans the application. The bounds are the
  /// payload, nothing more; store permission is dropped so a loan can never
  /// corrupt the room it aliases (CompartOS-style bounded delegation).
  [[nodiscard]] machine::CapView loan(std::uint32_t off,
                                      std::uint32_t len) const {
    return room.window(off, len).readonly();
  }

  void reset() noexcept {
    data_off = kMbufHeadroom;
    data_len = 0;
    next = nullptr;
    nb_segs = 1;
    ol_flags = 0;
    l2_len = 0;
    l3_len = 0;
    l4_len = 0;
    tso_segsz = 0;
  }

  /// Grow at the tail; returns a view of the appended region.
  machine::CapView append(std::uint32_t n) {
    if (n > tailroom()) {
      throw cheri::CapFault(cheri::FaultKind::kBoundsViolation,
                            data_addr() + data_len, n, room.to_string(),
                            "mbuf append beyond tailroom");
    }
    const std::uint32_t off = data_off + data_len;
    data_len += n;
    return room.window(off, n);
  }

  /// Grow at the head (L2/L3 header push); returns the new front view.
  machine::CapView prepend(std::uint32_t n) {
    if (n > data_off) {
      throw cheri::CapFault(cheri::FaultKind::kBoundsViolation,
                            room.address(), n, room.to_string(),
                            "mbuf prepend beyond headroom");
    }
    data_off -= n;
    data_len += n;
    return room.window(data_off, n);
  }

  /// Shrink at the tail.
  void trim(std::uint32_t n) {
    if (n > data_len) n = data_len;
    data_len -= n;
  }
  /// Shrink at the head (header pull).
  void adj(std::uint32_t n) {
    if (n > data_len) n = data_len;
    data_off += n;
    data_len -= n;
  }
};

}  // namespace cherinet::updk
