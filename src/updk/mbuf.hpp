// Packet buffers (rte_mbuf analogue) backed by capability-bounded data rooms.
//
// Each mbuf owns a fixed data room carved from the compartment heap as a
// *bounded capability*: the NIC's DMA engine and the protocol stack both
// access packet bytes exclusively through it, so an off-by-one in any layer
// faults at the mbuf boundary instead of corrupting a neighbour (the
// fine-grained protection the paper gets from CHERI-porting DPDK, §III-B).
// Layout mirrors DPDK: headroom for prepending L2/L3 headers, data region,
// tailroom.
#pragma once

#include <cstdint>

#include "machine/cap_view.hpp"

namespace cherinet::updk {

class Mempool;

inline constexpr std::uint32_t kMbufHeadroom = 128;

struct Mbuf {
  machine::CapView room;      // the whole data room (bounded capability)
  std::uint32_t data_off = kMbufHeadroom;
  std::uint32_t data_len = 0;
  std::uint16_t refcnt = 0;
  std::uint32_t pool_index = 0;
  Mempool* pool = nullptr;

  [[nodiscard]] std::uint64_t room_size() const noexcept {
    return room.size();
  }
  [[nodiscard]] std::uint32_t headroom() const noexcept { return data_off; }
  [[nodiscard]] std::uint64_t tailroom() const noexcept {
    return room_size() - data_off - data_len;
  }

  /// Capability view of the packet data [data_off, data_off+data_len).
  [[nodiscard]] machine::CapView data() const {
    return room.window(data_off, data_len);
  }
  /// Address of the first packet byte (what descriptors carry).
  [[nodiscard]] std::uint64_t data_addr() const noexcept {
    return room.address() + data_off;
  }

  /// Exactly-bounded READ-ONLY view of [off, off+len) within the data room:
  /// the capability ff_zc_recv loans the application. The bounds are the
  /// payload, nothing more; store permission is dropped so a loan can never
  /// corrupt the room it aliases (CompartOS-style bounded delegation).
  [[nodiscard]] machine::CapView loan(std::uint32_t off,
                                      std::uint32_t len) const {
    return room.window(off, len).readonly();
  }

  void reset() noexcept {
    data_off = kMbufHeadroom;
    data_len = 0;
  }

  /// Grow at the tail; returns a view of the appended region.
  machine::CapView append(std::uint32_t n) {
    if (n > tailroom()) {
      throw cheri::CapFault(cheri::FaultKind::kBoundsViolation,
                            data_addr() + data_len, n, room.to_string(),
                            "mbuf append beyond tailroom");
    }
    const std::uint32_t off = data_off + data_len;
    data_len += n;
    return room.window(off, n);
  }

  /// Grow at the head (L2/L3 header push); returns the new front view.
  machine::CapView prepend(std::uint32_t n) {
    if (n > data_off) {
      throw cheri::CapFault(cheri::FaultKind::kBoundsViolation,
                            room.address(), n, room.to_string(),
                            "mbuf prepend beyond headroom");
    }
    data_off -= n;
    data_len += n;
    return room.window(data_off, n);
  }

  /// Shrink at the tail.
  void trim(std::uint32_t n) {
    if (n > data_len) n = data_len;
    data_len -= n;
  }
  /// Shrink at the head (header pull).
  void adj(std::uint32_t n) {
    if (n > data_len) n = data_len;
    data_off += n;
    data_len -= n;
  }
};

}  // namespace cherinet::updk
