// Packet buffers (rte_mbuf analogue) backed by capability-bounded data rooms.
//
// Each mbuf owns a fixed data room carved from the compartment heap as a
// *bounded capability*: the NIC's DMA engine and the protocol stack both
// access packet bytes exclusively through it, so an off-by-one in any layer
// faults at the mbuf boundary instead of corrupting a neighbour (the
// fine-grained protection the paper gets from CHERI-porting DPDK, §III-B).
// Layout mirrors DPDK: headroom for prepending L2/L3 headers, data region,
// tailroom.
//
// ---- Chained-mbuf driver ABI (scatter-gather emission) ----
//
// A frame handed to EthDev::tx_burst is a CHAIN: the head mbuf (protocol
// headers, serialized into its headroom DPDK-style) linked through `next`
// to payload segments, `nb_segs` counted on the head and pkt_len() the sum
// of the segments' data_len. Payload segments are usually INDIRECT mbufs
// (Mempool::alloc_indirect): headers without a data room of their own whose
// [data_off, data_off+data_len) windows another buffer's still-live room
// under that buffer's refcount — each slice reachable only through its own
// exactly-bounded capability, CompartOS-style bounded delegation applied to
// the wire path.
//
// Ownership: tx_burst takes the WHOLE chain on acceptance; the driver frees
// it with Mempool::free_chain once the device has fetched every segment
// (freeing an indirect segment detaches it, dropping its reference on the
// attached buffer). A rejected chain stays the caller's to free. RX never
// produces chains: the device model linearizes every received frame into
// the single staged descriptor buffer (the RX linearization rule), so
// rx_burst hands out plain single-segment mbufs.
#pragma once

#include <cstdint>

#include "machine/cap_view.hpp"

namespace cherinet::updk {

class Mempool;

inline constexpr std::uint32_t kMbufHeadroom = 128;

struct Mbuf {
  machine::CapView room;      // the whole data room (bounded capability)
  std::uint32_t data_off = kMbufHeadroom;
  std::uint32_t data_len = 0;
  std::uint16_t refcnt = 0;
  std::uint16_t nb_segs = 1;  // head of a chain: segments linked via next
  Mbuf* next = nullptr;       // next segment of this frame (nullptr = last)
  std::uint32_t pool_index = 0;
  Mempool* pool = nullptr;
  // Indirect mbufs: `room` windows `attach`'s data room (or a raw stack-
  // internal view when attach == nullptr) under a reference released at
  // free time. Direct mbufs keep both fields at their defaults.
  Mbuf* attach = nullptr;
  bool indirect = false;

  [[nodiscard]] std::uint64_t room_size() const noexcept {
    return room.size();
  }
  [[nodiscard]] std::uint32_t headroom() const noexcept { return data_off; }
  [[nodiscard]] std::uint64_t tailroom() const noexcept {
    return room_size() - data_off - data_len;
  }

  /// Total frame bytes across the chain (rte_pktmbuf_pkt_len).
  [[nodiscard]] std::uint32_t pkt_len() const noexcept {
    std::uint32_t n = 0;
    for (const Mbuf* s = this; s != nullptr; s = s->next) n += s->data_len;
    return n;
  }

  /// Link `seg` as the last segment of this (head) chain.
  void chain(Mbuf* seg) noexcept {
    Mbuf* t = this;
    while (t->next != nullptr) t = t->next;
    t->next = seg;
    nb_segs = static_cast<std::uint16_t>(nb_segs + seg->nb_segs);
  }

  /// Capability view of the packet data [data_off, data_off+data_len).
  [[nodiscard]] machine::CapView data() const {
    return room.window(data_off, data_len);
  }
  /// Address of the first packet byte (what descriptors carry).
  [[nodiscard]] std::uint64_t data_addr() const noexcept {
    return room.address() + data_off;
  }

  /// Exactly-bounded READ-ONLY view of [off, off+len) within the data room:
  /// the capability ff_zc_recv loans the application. The bounds are the
  /// payload, nothing more; store permission is dropped so a loan can never
  /// corrupt the room it aliases (CompartOS-style bounded delegation).
  [[nodiscard]] machine::CapView loan(std::uint32_t off,
                                      std::uint32_t len) const {
    return room.window(off, len).readonly();
  }

  void reset() noexcept {
    data_off = kMbufHeadroom;
    data_len = 0;
    next = nullptr;
    nb_segs = 1;
  }

  /// Grow at the tail; returns a view of the appended region.
  machine::CapView append(std::uint32_t n) {
    if (n > tailroom()) {
      throw cheri::CapFault(cheri::FaultKind::kBoundsViolation,
                            data_addr() + data_len, n, room.to_string(),
                            "mbuf append beyond tailroom");
    }
    const std::uint32_t off = data_off + data_len;
    data_len += n;
    return room.window(off, n);
  }

  /// Grow at the head (L2/L3 header push); returns the new front view.
  machine::CapView prepend(std::uint32_t n) {
    if (n > data_off) {
      throw cheri::CapFault(cheri::FaultKind::kBoundsViolation,
                            room.address(), n, room.to_string(),
                            "mbuf prepend beyond headroom");
    }
    data_off -= n;
    data_len += n;
    return room.window(data_off, n);
  }

  /// Shrink at the tail.
  void trim(std::uint32_t n) {
    if (n > data_len) n = data_len;
    data_len -= n;
  }
  /// Shrink at the head (header pull).
  void adj(std::uint32_t n) {
    if (n > data_len) n = data_len;
    data_off += n;
    data_len -= n;
  }
};

}  // namespace cherinet::updk
