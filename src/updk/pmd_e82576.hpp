// Poll-mode driver for the e82576 device model (igb analogue).
//
// Owns one RX/TX queue pair of one port (default: queue 0 of a single-queue
// port): allocates descriptor rings in compartment memory, keeps an mbuf
// staged per RX descriptor, refills RDT as it harvests DD-marked
// descriptors, and reclaims TX descriptors after device write-back. All
// descriptor and buffer memory is reachable only through the DMA capability
// granted at attach (see e82576.hpp).
//
// Sharding: N PMDs on N queues of one port give each stack shard its own
// rings and doorbells; the device's RSS classifier (Toeplitz + RETA + L4
// port filters) decides which queue an inbound frame lands on. This PMD
// only ever polls ITS queue — the EthDev steering surface (rx_steering /
// rx_queue_of / steer_local_port) exposes the classifier to the stack.
#pragma once

#include <memory>
#include <vector>

#include "machine/heap.hpp"
#include "nic/e82576.hpp"
#include "updk/ethdev.hpp"
#include "updk/mempool.hpp"

namespace cherinet::updk {

class E82576Pmd final : public EthDev {
 public:
  E82576Pmd(std::string name, nic::E82576Device* dev, int port,
            machine::CompartmentHeap* heap, Mempool* pool,
            sim::VirtualClock* clock, const EthConf& conf)
      : E82576Pmd(std::move(name), dev, port, /*queue=*/0, heap, pool, clock,
                  conf) {}

  /// Queue-pinned driver: polls only `queue` of `port`. The port must have
  /// been configured (E82576Port::configure_queues) for at least queue+1
  /// queues first — Eal::attach_port_queue does this.
  E82576Pmd(std::string name, nic::E82576Device* dev, int port,
            std::uint32_t queue, machine::CompartmentHeap* heap,
            Mempool* pool, sim::VirtualClock* clock, const EthConf& conf);

  std::size_t rx_burst(std::span<Mbuf*> out) override;
  std::size_t tx_burst(std::span<Mbuf*> in) override;
  [[nodiscard]] RxSteering rx_steering() const override {
    return {static_cast<std::uint16_t>(dev_->port(port_).queue_count()),
            static_cast<std::uint16_t>(queue_)};
  }
  [[nodiscard]] std::uint16_t rx_queue_of(std::uint32_t remote_ip,
                                          std::uint16_t remote_port,
                                          std::uint32_t local_ip,
                                          std::uint16_t local_port,
                                          std::uint8_t proto) const override {
    return static_cast<std::uint16_t>(dev_->port(port_).rx_queue_of(
        remote_ip, local_ip, remote_port, local_port, proto));
  }
  bool steer_local_port(std::uint8_t proto,
                        std::uint16_t local_port) override {
    if (dev_->port(port_).queue_count() <= 1) return true;  // nothing to pin
    return dev_->port(port_).set_l4_filter(
               proto, local_port, static_cast<std::uint8_t>(queue_)) >= 0;
  }
  void unsteer_local_port(std::uint8_t proto,
                          std::uint16_t local_port) override {
    if (dev_->port(port_).queue_count() <= 1) return;
    dev_->port(port_).clear_l4_filter(proto, local_port);
  }
  [[nodiscard]] nic::MacAddr mac() const override {
    return dev_->port(port_).mac();
  }
  [[nodiscard]] bool link_up() const override {
    return dev_->port(port_).link_up();
  }
  [[nodiscard]] EthStats stats() const override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  /// Effective offloads: the configured request masked to what the 82576
  /// model implements (all four kOffload* bits). Per-queue: each PMD owns
  /// one queue, so masking a capability off one queue's EthConf leaves its
  /// siblings' negotiations untouched.
  [[nodiscard]] std::uint32_t offloads() const override { return offloads_; }
  [[nodiscard]] std::optional<sim::Ns> next_event() const override {
    return dev_->port(port_).next_rx_event();
  }

 private:
  void setup_rx_ring();
  void setup_tx_ring();
  void reclaim_tx();

  std::string name_;
  nic::E82576Device* dev_;
  int port_;
  std::uint32_t queue_ = 0;
  machine::CompartmentHeap* heap_;
  Mempool* pool_;
  sim::VirtualClock* clock_;
  EthConf conf_;

  machine::CapView rx_ring_;   // RxDesc[conf.rx_ring_size]
  machine::CapView tx_ring_;   // TxDesc[conf.tx_ring_size]
  std::vector<Mbuf*> rx_staged_;
  std::vector<Mbuf*> tx_pending_;
  std::uint32_t rx_next_ = 0;  // next descriptor the driver will harvest
  std::uint32_t tx_next_ = 0;  // next descriptor the driver will fill
  std::uint32_t tx_clean_ = 0; // next descriptor to reclaim
  EthStats stats_;
  std::uint32_t offloads_ = 0;
  // Context-descriptor cache (igb idiom): a TSO frame only spends a ring
  // slot on a TxCtxDesc when its {l2,l3,l4,mss} tuple differs from the one
  // the queue already latched.
  nic::TxCtxDesc tx_ctx_cache_{};
  bool tx_ctx_cached_ = false;
};

}  // namespace cherinet::updk
