// Poll-mode driver for the e82576 device model (igb analogue).
//
// Owns one port: allocates descriptor rings in compartment memory, keeps an
// mbuf staged per RX descriptor, refills RDT as it harvests DD-marked
// descriptors, and reclaims TX descriptors after device write-back. All
// descriptor and buffer memory is reachable only through the DMA capability
// granted at attach (see e82576.hpp).
#pragma once

#include <memory>
#include <vector>

#include "machine/heap.hpp"
#include "nic/e82576.hpp"
#include "updk/ethdev.hpp"
#include "updk/mempool.hpp"

namespace cherinet::updk {

class E82576Pmd final : public EthDev {
 public:
  E82576Pmd(std::string name, nic::E82576Device* dev, int port,
            machine::CompartmentHeap* heap, Mempool* pool,
            sim::VirtualClock* clock, const EthConf& conf);

  std::size_t rx_burst(std::span<Mbuf*> out) override;
  std::size_t tx_burst(std::span<Mbuf*> in) override;
  [[nodiscard]] nic::MacAddr mac() const override {
    return dev_->port(port_).mac();
  }
  [[nodiscard]] bool link_up() const override {
    return dev_->port(port_).link_up();
  }
  [[nodiscard]] EthStats stats() const override;
  [[nodiscard]] const std::string& name() const override { return name_; }
  [[nodiscard]] std::optional<sim::Ns> next_event() const override {
    return dev_->port(port_).next_rx_event();
  }

 private:
  void setup_rx_ring();
  void setup_tx_ring();
  void reclaim_tx();

  std::string name_;
  nic::E82576Device* dev_;
  int port_;
  machine::CompartmentHeap* heap_;
  Mempool* pool_;
  sim::VirtualClock* clock_;
  EthConf conf_;

  machine::CapView rx_ring_;   // RxDesc[conf.rx_ring_size]
  machine::CapView tx_ring_;   // TxDesc[conf.tx_ring_size]
  std::vector<Mbuf*> rx_staged_;
  std::vector<Mbuf*> tx_pending_;
  std::uint32_t rx_next_ = 0;  // next descriptor the driver will harvest
  std::uint32_t tx_next_ = 0;  // next descriptor the driver will fill
  std::uint32_t tx_clean_ = 0; // next descriptor to reclaim
  EthStats stats_;
};

}  // namespace cherinet::updk
