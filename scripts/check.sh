#!/usr/bin/env bash
# CI gate: configure + build with warnings-as-errors, then run the full
# ctest suite (unit/integration tests plus the fig4/fig5 crossing-census
# smoke gates registered in CMakeLists.txt).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-check}"
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DCHERINET_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
