#!/usr/bin/env bash
# CI gate: configure + build with warnings-as-errors, then run the full
# ctest suite (unit/integration tests plus the fig4/fig5 crossing-census
# and RX-census smoke gates registered in CMakeLists.txt).
#
# SANITIZE=1 switches to the AddressSanitizer + UBSan configuration in its
# own build tree — the memory-safety net over the loan-based RX pipeline
# (mbuf refcounts, capability views, SPSC event rings).
#
# TSAN=1 switches to the ThreadSanitizer configuration, again in its own
# build tree, and runs only the thread-spawning suites (the arbiter-paced
# scenario fleets, the sharded stacks, the intravisor host shims): the
# data-race net over the multi-tenant fleet and per-core shard paths.
set -euo pipefail

cd "$(dirname "$0")/.."

SANITIZE="${SANITIZE:-0}"
TSAN="${TSAN:-0}"
if [[ "$SANITIZE" == "1" && "$TSAN" == "1" ]]; then
  echo "SANITIZE=1 and TSAN=1 are exclusive (ASan and TSan cannot share a binary)" >&2
  exit 2
fi
if [[ "$SANITIZE" == "1" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-asan}"
  EXTRA_FLAGS=(-DCHERINET_SANITIZE=ON)
  # Abort on the first report; UBSan prints stacks for its diagnostics.
  export ASAN_OPTIONS="${ASAN_OPTIONS:-abort_on_error=1:detect_leaks=1}"
  export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
  # Sanitizer slowdown distorts wall-clock contention ratios; this leg is
  # for the memory-safety signal, not the timing figures.
  export CHERINET_SKIP_TIMING_TESTS=1
elif [[ "$TSAN" == "1" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  EXTRA_FLAGS=(-DCHERINET_TSAN=ON)
  export TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1:second_deadlock_stack=1}"
  export CHERINET_SKIP_TIMING_TESTS=1
  # The MPMC ring stress spins six threads; full volume is pathological
  # under TSan's serialization on small machines.
  export CHERINET_STRESS_LIGHT=1
else
  BUILD_DIR="${BUILD_DIR:-build-check}"
  EXTRA_FLAGS=()
fi
JOBS="$(nproc 2>/dev/null || echo 4)"

cmake -B "$BUILD_DIR" -S . -DCHERINET_WERROR=ON "${EXTRA_FLAGS[@]}"
cmake --build "$BUILD_DIR" -j "$JOBS"
status=0
if [[ "$TSAN" == "1" ]]; then
  # Only the suites that actually spawn threads: everything else is
  # single-threaded virtual-time simulation with nothing for TSan to see.
  ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" \
    -R '^(test_scenarios|test_tenants|test_shards|test_host_intravisor|test_sim_stats|test_updk)$' \
    || status=$?
  exit "$status"
fi
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS" || status=$?

# Table II bandwidth + driver-doorbell census: gates >= 8 frames per
# tx_burst under sustained send load (the staged scatter-gather emission)
# and persists goodput + burst figures as BENCH_table2.json. The sharded
# legs ride in the same binary: contended Scenario 2 at 2 shards must
# aggregate >= 1.8x the single-stack per-stream figure, the 1-shard run
# must stay within 5% of the classic service, and every shard must show
# goodput + proxied calls + mutex traffic in the per-shard census that
# lands in the JSON. Reduced byte volume keeps the CI run short; run the
# binary directly for paper scale. Skipped on the sanitizer leg with the
# other wall-clock-sensitive runs.
if [[ "$SANITIZE" != "1" ]]; then
  CHERINET_BENCH_BYTES="${CHERINET_BENCH_BYTES:-2097152}" \
  CHERINET_BENCH_JSON_DIR="$BUILD_DIR" \
    "$BUILD_DIR"/bench_table2_tcp_bandwidth || status=$?

  # Locking-strategy ablation, now with the sharded-futex leg: per-shard
  # mutexes must run contention-free (every acquisition a fast path) while
  # the shared-mutex legs price the umtx escalation for comparison.
  "$BUILD_DIR"/bench_ablation_locking || status=$?

  # Connection-churn census: gates timer-cost sublinearity over idle-PCB
  # populations (10^5 <= 2x 10^3 per loop turn; CHERINET_CHURN_C1M=1 adds
  # the 10^6 point) and the doorbell-only ring lifecycle (zero per-op API
  # calls across connect->transfer->close after one attach). Persists
  # BENCH_churn.json.
  CHERINET_BENCH_JSON_DIR="$BUILD_DIR" \
    "$BUILD_DIR"/bench_churn_connection_scale || status=$?

  # Hostile-wire census: gates the goodput-vs-loss curve (monotone in the
  # loss rate; 1% uniform loss retains >= 50% of lossless goodput via
  # NewReno fast recovery + limited transmit + the GRO ack flush), the
  # mixed-class p99 under DRR/token-bucket TX scheduling (<= 5x unloaded),
  # corruption containment at the MAC FCS (zero corrupt bytes delivered),
  # and seeded-impairment replay determinism. Persists BENCH_impairment.json.
  CHERINET_BENCH_JSON_DIR="$BUILD_DIR" \
    "$BUILD_DIR"/bench_impairment_qos || status=$?

  # Tenant-fleet census: three victim streams vs each seeded hostile-tenant
  # profile on one shared stack. Gates >= 90% per-victim goodput retention
  # against the adversary-free control, per-cause accounting of every
  # offender failure (quota rejects / deferral evictions / drain throttles /
  # SQE errors), and exact post-eviction reclamation (gauges to zero, PCB
  # and mbuf-pool baselines restored). Persists BENCH_tenants.json.
  CHERINET_BENCH_JSON_DIR="$BUILD_DIR" \
    "$BUILD_DIR"/bench_tenant_fleet || status=$?
fi

# Surface the census artifacts the bench gates emit (v1 / v2-batch /
# v3-uring crossings per byte volume; table2 goodput + frames per
# tx_burst): the perf trajectory tracked across PRs. Printed even when a
# gate failed — a failing run's numbers are exactly the ones worth reading.
for f in "$BUILD_DIR"/BENCH_fig4.json "$BUILD_DIR"/BENCH_fig5.json \
         "$BUILD_DIR"/BENCH_table2.json "$BUILD_DIR"/BENCH_churn.json \
         "$BUILD_DIR"/BENCH_impairment.json "$BUILD_DIR"/BENCH_tenants.json; do
  if [[ -f "$f" ]]; then
    echo "== bench artifact: $f"
    cat "$f"
    # The zc TX gates' persisted evidence: send-side byte copies AND
    # emission-time payload re-reads on the zero-copy path (both must be
    # 0 — grep'able across PR runs).
    grep -o '"tx_copies": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"emit_payload_reads": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"frames_per_burst": [0-9.]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    # Sharded-stack census evidence: aggregate goodput of the multi-shard
    # legs plus each shard's own goodput/mutex/proxy counters.
    grep -o '"send_aggregate_mbps": [0-9.]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"recv_aggregate_mbps": [0-9.]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"mutex_contended": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    # Churn census evidence: timer-cost sublinearity across idle-PCB
    # populations and the ring-resident lifecycle (v1_calls must be 0).
    grep -o '"sublinearity_x": [0-9.]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"lifecycles_per_sec": [0-9.]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"v1_calls": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    # Hostile-wire census evidence: loss-recovery efficiency, classed-QoS
    # tail latency, and FCS containment (corrupt_bytes_delivered must be 0).
    grep -o '"retained_at_1pct": [0-9.]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"p99_unloaded_us": [0-9.]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"p99_loaded_us": [0-9.]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"rx_crc_errors": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"corrupt_bytes_delivered": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    # Hardware-offload census evidence: software checksum bytes on the
    # negotiated TX path and the TSO slicer's output.
    grep -o '"stack_checksum_bytes": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"tso_frames": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    # Tenant-fleet census evidence: the worst per-victim goodput retention
    # under any hostile profile, and the offender's per-cause failure
    # counters (how each abuse was actually absorbed).
    grep -o '"min_retention": [0-9.]*' "$f" | head -n1 | sed "s|^|== $(basename "$f") |" || true
    grep -o '"sq_drain_throttled": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"cq_deferral_evictions": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
    grep -o '"sqe_errors": [0-9]*' "$f" | sed "s|^|== $(basename "$f") |" || true
  fi
done

# Hardware-offload regression gates over the fig4/fig5 artifacts: with TX
# checksum offload negotiated (the default), the stack must not have walked
# a single payload byte for checksums (stack_checksum_bytes == 0), and the
# TSO ablation leg must actually have sliced super-segments in the device
# (tso_frames > 0). Either drifting is a silent loss of the offload path.
for f in "$BUILD_DIR"/BENCH_fig4.json "$BUILD_DIR"/BENCH_fig5.json; do
  if [[ -f "$f" ]]; then
    scb="$(grep -o '"stack_checksum_bytes": [0-9]*' "$f" | head -n1 \
           | grep -o '[0-9]*$' || true)"
    tsf="$(grep -o '"tso_frames": [0-9]*' "$f" | head -n1 \
           | grep -o '[0-9]*$' || true)"
    if [[ "${scb:-}" != "0" ]]; then
      echo "== OFFLOAD REGRESSION: $(basename "$f") stack_checksum_bytes=${scb:-missing} (want 0)"
      status=1
    fi
    if [[ -z "${tsf:-}" || "$tsf" == "0" ]]; then
      echo "== OFFLOAD REGRESSION: $(basename "$f") tso_frames=${tsf:-missing} (want > 0)"
      status=1
    fi
  fi
done

# Tenant-isolation regression gates over the fleet artifact: the bench's own
# verdict must be green (every hostile profile kept every victim >= 90% of
# control, was accounted per-cause, and reclaimed exactly), and the
# retention floor itself is re-checked here so a silent weakening of the
# in-binary gate cannot slip through.
f="$BUILD_DIR"/BENCH_tenants.json
if [[ -f "$f" ]]; then
  if ! grep -q '"gates_passed": true' "$f"; then
    echo "== TENANT REGRESSION: $(basename "$f") gates_passed != true"
    status=1
  fi
  minret="$(grep -o '"min_retention": [0-9.]*' "$f" | tail -n1 \
            | grep -o '[0-9.]*$' || true)"
  if [[ -z "${minret:-}" ]] || ! awk -v r="$minret" 'BEGIN{exit !(r >= 0.90)}'; then
    echo "== TENANT REGRESSION: $(basename "$f") min_retention=${minret:-missing} (want >= 0.90)"
    status=1
  fi
fi
exit "$status"
